"""Synchronization primitives on tuple space: semaphore, mutex, RW lock.

Classic Linda folklore builds these from bare ``in``/``out`` — a semaphore
is "a tuple you withdraw to P and deposit to V".  The folklore versions
inherit Sec. 2.2's crash window: a holder that dies between the ``in`` and
the ``out`` leaks the permit forever.  The FT-Linda versions here fix the
*structure* of that problem the same way the paper's paradigms do:

- every acquisition atomically records **who holds what** (a holder tuple
  next to the withdrawn permit, one AGS), so the standard failure monitor
  pattern can release a dead holder's permits from its failure tuple;
- :meth:`Semaphore.release_holder` is exactly that monitor action — one
  atomic statement converting a holder record back into a permit.

The read-write lock composes the semaphore with a turnstile tuple: a
writer closes the turnstile (no new readers) and drains the permit pool
with blocking acquires — every step crash-recoverable by the same holder
discipline.
"""

from __future__ import annotations

from typing import Any

from repro.core.ags import AGS, Branch, Guard, Op
from repro.core.spaces import TSHandle
__all__ = ["Mutex", "RWLock", "Semaphore"]


class Semaphore:
    """A counting semaphore with crash-recoverable holder records."""

    def __init__(self, ts: TSHandle, name: str, permits: int):
        if permits < 1:
            raise ValueError("need at least one permit")
        self.ts = ts
        self.name = name
        self.permits = permits

    def create(self, api: Any) -> None:
        for _ in range(self.permits):
            api.out(self.ts, self.name, "permit")

    # ------------------------------------------------------------------ #

    def acquire(self, api: Any, holder: int) -> None:
        """P: withdraw a permit AND record the holder, in one statement."""
        api.execute(AGS.single(
            Guard.in_(self.ts, self.name, "permit"),
            [Op.out(self.ts, self.name, "holder", holder)],
        ))

    def release(self, api: Any, holder: int) -> None:
        """V: retire our holder record and return the permit, atomically."""
        res = api.execute(AGS.single(
            Guard.in_(self.ts, self.name, "holder", holder),
            [Op.out(self.ts, self.name, "permit")],
        ))
        assert res.succeeded

    def try_acquire(self, api: Any, holder: int) -> bool:
        """Non-blocking P with strong probe semantics."""
        res = api.execute(AGS([
            Branch(
                Guard.inp(self.ts, self.name, "permit"),
                [Op.out(self.ts, self.name, "holder", holder)],
            ),
            Branch(Guard.true(), []),
        ]))
        return res.fired == 0

    # ------------------------------------------------------------------ #
    # the failure-monitor hook
    # ------------------------------------------------------------------ #

    def release_holder(self, api: Any, holder: int) -> int:
        """Release every permit *holder* held (run on its failure tuple).

        Returns how many permits were recovered.  Each recovery is one
        atomic statement, so a monitor crash mid-recovery loses nothing.
        """
        recovered = 0
        while True:
            res = api.execute(AGS([
                Branch(
                    Guard.inp(self.ts, self.name, "holder", holder),
                    [Op.out(self.ts, self.name, "permit")],
                ),
                Branch(Guard.true(), []),
            ]))
            if res.fired != 0:
                return recovered
            recovered += 1

    def available(self, api: Any) -> int:
        """Permits currently free (an instantaneous strong-probe count)."""
        n = 0
        taken = []
        while api.inp(self.ts, self.name, "permit") is not None:
            taken.append(1)
            n += 1
        for _ in taken:
            api.out(self.ts, self.name, "permit")
        return n


class Mutex(Semaphore):
    """A binary semaphore."""

    def __init__(self, ts: TSHandle, name: str):
        super().__init__(ts, name, permits=1)


class RWLock:
    """A readers-writer lock from one pool of reader permits.

    Readers pass a turnstile and take one permit; a writer withdraws the
    turnstile (blocking new readers) and drains every permit, so write
    exclusivity is the empty pool.  Writer preference, starvation-free for
    bounded reader hold times.
    """

    def __init__(self, ts: TSHandle, name: str, max_readers: int = 8):
        self.ts = ts
        self.name = name
        self.max_readers = max_readers
        self.sem = Semaphore(ts, f"{name}.r", max_readers)

    def create(self, api: Any) -> None:
        self.sem.create(api)
        api.out(self.ts, self.name, "turnstile")

    def acquire_read(self, api: Any, holder: int) -> None:
        # the turnstile keeps incoming readers from starving a writer that
        # is draining permits: readers pass through it one at a time
        api.rd(self.ts, self.name, "turnstile")
        self.sem.acquire(api, holder)

    def release_read(self, api: Any, holder: int) -> None:
        self.sem.release(api, holder)

    def acquire_write(self, api: Any, holder: int) -> None:
        """Close the turnstile, then drain the permit pool.

        With the turnstile closed no new reader can take a permit, so each
        blocking acquire below waits only for *current* readers to finish;
        the drain completes in at most max_readers wake-ups.  Each permit
        taken is recorded with a holder tuple (the Semaphore's discipline),
        so a writer crash mid-drain is recoverable the standard way.
        """
        api.in_(self.ts, self.name, "turnstile")
        for _ in range(self.max_readers):
            self.sem.acquire(api, holder)
        api.out(self.ts, self.name, "writer", holder)

    def release_write(self, api: Any, holder: int) -> None:
        api.in_(self.ts, self.name, "writer", holder)
        for _ in range(self.max_readers):
            self.sem.release(api, holder)
        api.out(self.ts, self.name, "turnstile")
