"""Linda programming paradigms, in their fault-tolerant FT-Linda form.

Section 4 of the paper shows how the two FT-Linda enhancements — stable
tuple spaces and atomic guarded statements — turn the classic Linda
paradigms into fault-tolerant ones.  This package implements each of them
against the backend-independent :class:`~repro.core.runtime.BaseRuntime`
API, so the same code runs on the local, threaded-replica, and
multiprocessing backends:

- :mod:`repro.paradigms.distvar` — the distributed variable (Sec. 2.2's
  motivating table: initialization / inspection / atomic update);
- :mod:`repro.paradigms.bag_of_tasks` — the bag-of-tasks / replicated
  worker paradigm with in-progress tuples and a failure monitor (Sec. 4);
- :mod:`repro.paradigms.divide_conquer` — fault-tolerant divide and
  conquer (Sec. 4.1);
- :mod:`repro.paradigms.barrier` — reusable barrier synchronization;
- :mod:`repro.paradigms.replicated_server` — a primary/backup service
  whose failover is driven by the failure tuple.
"""

from repro.paradigms.bag_of_tasks import BagOfTasks, run_bag_of_tasks
from repro.paradigms.barrier import Barrier
from repro.paradigms.consensus import Consensus
from repro.paradigms.distvar import DistributedVariable
from repro.paradigms.divide_conquer import run_divide_conquer
from repro.paradigms.replicated_server import ReplicatedServer
from repro.paradigms.streams import TupleStream

__all__ = [
    "BagOfTasks",
    "Barrier",
    "Consensus",
    "DistributedVariable",
    "ReplicatedServer",
    "TupleStream",
    "run_bag_of_tasks",
    "run_divide_conquer",
]
