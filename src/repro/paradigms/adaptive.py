"""Adaptive parallelism (Piranha-style) on the fault-tolerant bag.

The paper lists "ease of utilizing idle workstation cycles [18, 14]"
among the bag-of-tasks advantages — the Piranha model, where workers
*join* a computation when their workstation is idle and *retreat* when
its owner returns.  FT-Linda makes retreat trivially safe: a retreating
worker runs exactly the monitor's recycling statement on itself —

    < in(main, "worker", wid, host, ?prog) => move(prog, bag, "task", ?) >

— atomically deregistering and returning any in-progress subtask to the
bag.  A *retreat* is just a *crash* the worker performs politely on
itself, which is why the same statement serves both; the symmetry is the
point of the design.

:class:`AdaptiveBag` supports joining and retreating workers at any time;
``run_adaptive`` drives a join/retreat schedule and asserts nothing is
lost.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Sequence

from repro.core.ags import AGS, Branch, Guard, Op, ref
from repro.core.runtime import BaseRuntime, ProcessView
from repro.core.spaces import TSHandle
from repro.core.tuples import formal
from repro.paradigms.bag_of_tasks import STOP, WORKER_TAG

__all__ = ["AdaptiveBag", "run_adaptive"]


class AdaptiveBag:
    """A bag-of-tasks whose worker pool grows and shrinks at run time."""

    def __init__(self, runtime: BaseRuntime, compute: Callable[[Any], Any],
                 name: str = "adaptive"):
        self.runtime = runtime
        self.compute = compute
        self.name = name
        self.bag = runtime.create_space(f"{name}.bag")
        self.results = runtime.create_space(f"{name}.results")
        self._wid = 0
        self._lock = threading.Lock()
        self._retreat_flags: dict[int, threading.Event] = {}
        self._handles: dict[int, Any] = {}

    # ------------------------------------------------------------------ #
    # pool management
    # ------------------------------------------------------------------ #

    def seed(self, payloads: Sequence[Any]) -> None:
        for p in payloads:
            self.runtime.out(self.bag, "task", p)

    def join(self) -> int:
        """A new worker joins; returns its id."""
        with self._lock:
            self._wid += 1
            wid = self._wid
        flag = threading.Event()
        self._retreat_flags[wid] = flag
        self._handles[wid] = self.runtime.eval_(self._worker, wid, flag)
        return wid

    def retreat(self, wid: int, timeout: float = 30.0) -> int:
        """Ask worker *wid* to retreat; returns tasks it completed."""
        self._retreat_flags[wid].set()
        return self._handles[wid].join(timeout=timeout)

    def shutdown(self, timeout: float = 30.0) -> dict[int, int]:
        """Stop every remaining worker via poison pills."""
        remaining = [
            wid for wid, h in self._handles.items() if not h.done
        ]
        for _ in remaining:
            self.runtime.out(self.bag, "task", STOP)
        return {
            wid: self._handles[wid].join(timeout=timeout) for wid in remaining
        }

    def collect(self, n: int, timeout: float = 30.0) -> list[tuple[Any, Any]]:
        out = []
        for _ in range(n):
            t = self.runtime.in_(
                self.results, "result", formal(), formal(), timeout=timeout
            )
            out.append((t[1], t[2]))
        return out

    def active_workers(self) -> int:
        """Registered workers right now (strong probe-based count)."""
        count = 0
        seen = []
        while True:
            t = self.runtime.inp(
                self.runtime.main_ts, WORKER_TAG, formal(int), formal(int),
                formal(),
            )
            if t is None:
                break
            seen.append(t)
            count += 1
        for t in seen:
            self.runtime.out(self.runtime.main_ts, *t.fields)
        return count

    # ------------------------------------------------------------------ #
    # the worker
    # ------------------------------------------------------------------ #

    def _worker(self, proc: ProcessView, wid: int, flag: threading.Event) -> int:
        main = proc.main_ts
        prog = proc.create_space(f"{self.name}.prog.{wid}")
        proc.out(main, WORKER_TAG, wid, wid, prog)
        take = AGS([
            Branch(
                Guard.inp(self.bag, "task", formal(object, "t")),
                [Op.out(prog, "task", ref("t"))],
            ),
            Branch(Guard.true(), []),
        ])
        done = 0
        while True:
            if flag.is_set():
                # retreat: EXACTLY the monitor's recycling statement, run
                # on ourselves — deregistration + subtask return, atomic
                proc.execute(AGS.single(
                    Guard.in_(main, WORKER_TAG, wid, wid, formal(object, "p")),
                    [Op.move(ref("p"), self.bag, "task", formal(object))],
                ))
                return done
            res = proc.execute(take)
            if res.fired != 0:
                time.sleep(0.002)  # bag momentarily empty; stay polite
                continue
            t = res["t"]
            if t == STOP:
                proc.execute(AGS.single(
                    Guard.in_(main, WORKER_TAG, wid, wid, formal(object, "p")),
                    [Op.in_(prog, "task", STOP)],
                ))
                return done
            result = self.compute(t)
            proc.execute(AGS.single(
                Guard.in_(prog, "task", t),
                [Op.out(self.results, "result", t, result)],
            ))
            done += 1


def run_adaptive(
    runtime: BaseRuntime,
    payloads: Sequence[Any],
    compute: Callable[[Any], Any],
    *,
    initial_workers: int = 2,
    join_after: Sequence[float] = (),
    retreat_first_after: float | None = None,
) -> dict[str, Any]:
    """Drive an adaptive run: start a pool, optionally grow and shrink it.

    Every payload must produce exactly one result no matter how the pool
    churns — the work-conservation property the retreat statement buys.
    """
    bag = AdaptiveBag(runtime, compute)
    bag.seed(payloads)
    wids = [bag.join() for _ in range(initial_workers)]
    retreated: dict[int, int] = {}
    for delay in join_after:
        time.sleep(delay)
        wids.append(bag.join())
    if retreat_first_after is not None:
        time.sleep(retreat_first_after)
        retreated[wids[0]] = bag.retreat(wids[0])
    results = bag.collect(len(payloads))
    completed_by = bag.shutdown()
    completed_by.update(retreated)
    return {
        "results": results,
        "completed_by": completed_by,
        "retreated": retreated,
    }
