"""A highly available request/reply server with primary/backup failover.

The fault-tolerance literature's classic application of failure
notification: a *primary* server consumes request tuples and deposits
reply tuples; a *backup* blocks on the primary's distinguished failure
tuple; when it appears, the backup atomically claims the primary role,
recovers the requests the primary had taken but not answered (they sit in
the primary's in-progress space, thanks to the take-AGS), and carries on.
Clients never notice beyond latency: every request gets exactly one reply.

The server's own state lives in a stable tuple space, so failover needs
no state reconstruction — exactly the "stable storage" use the paper's
abstract promises ("tuple values are guaranteed to persist across
failures").
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.core.ags import AGS, Guard, Op, ref
from repro.core.runtime import BaseRuntime, ProcessView
from repro.core.spaces import TSHandle
from repro.core.statemachine import FAILURE_TAG
from repro.core.tuples import formal

__all__ = ["ReplicatedServer"]

#: Pseudo-request telling a server loop to exit.
SHUTDOWN = "__svc_stop__"


class ReplicatedServer:
    """One named service: requests in, replies out, state in stable TS.

    Parameters
    ----------
    runtime:
        Any FT-Linda runtime.
    name:
        Service name; all its tuples are tagged with it.
    handler:
        ``handler(state, payload) -> (reply, new_state)`` — a pure
        function run in the server process.
    initial_state:
        Starting value of the service state tuple.
    """

    def __init__(
        self,
        runtime: BaseRuntime,
        name: str,
        handler: Callable[[Any, Any], tuple[Any, Any]],
        initial_state: Any,
    ):
        self.runtime = runtime
        self.name = name
        self.handler = handler
        self.main = runtime.main_ts
        runtime.out(self.main, name, "state", initial_state)

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #

    def request(self, api: Any, req_id: int, payload: Any) -> Any:
        """Submit a request and block for its reply."""
        api.out(self.main, self.name, "req", req_id, payload)
        return api.in_(self.main, self.name, "rep", req_id, formal())[3]

    def shutdown(self) -> None:
        self.runtime.out(self.main, self.name, "req", -1, SHUTDOWN)

    # ------------------------------------------------------------------ #
    # server side
    # ------------------------------------------------------------------ #

    def serve(
        self,
        proc: ProcessView,
        host_id: int,
        *,
        crash_after: int | None = None,
    ) -> int:
        """Server loop; returns the number of requests answered.

        ``crash_after=k`` makes the server die holding its (k+1)-th
        request — inside the vulnerable window — for failover tests.
        """
        prog = proc.create_space(f"{self.name}.prog.{host_id}")
        proc.out(self.main, self.name, "serving", host_id, prog)
        take = AGS.single(
            Guard.in_(self.main, self.name, "req", formal(int, "id"),
                      formal(object, "x")),
            [Op.out(prog, self.name, "req", ref("id"), ref("x"))],
        )
        answered = 0
        while True:
            res = proc.execute(take)
            req_id, payload = res["id"], res["x"]
            if payload == SHUTDOWN:
                proc.execute(AGS.single(
                    Guard.in_(self.main, self.name, "serving", host_id,
                              formal(object, "p")),
                    [Op.in_(prog, self.name, "req", req_id, SHUTDOWN)],
                ))
                return answered
            if crash_after is not None and answered >= crash_after:
                return answered  # dies with the request in its prog space
            state = proc.rd(self.main, self.name, "state", formal())[2]
            reply, new_state = self.handler(state, payload)
            # answer + state transition + request retirement: indivisible
            proc.execute(AGS.single(
                Guard.in_(prog, self.name, "req", req_id, payload),
                [
                    Op.in_(self.main, self.name, "state", state),
                    Op.out(self.main, self.name, "state", new_state),
                    Op.out(self.main, self.name, "rep", req_id, reply),
                ],
            ))
            answered += 1

    def backup(self, proc: ProcessView, primary_host: int, my_host: int) -> int:
        """Hot backup: waits for the primary's failure tuple, then serves.

        Returns the number of requests answered after taking over.
        """
        proc.in_(self.main, FAILURE_TAG, primary_host)
        # atomically take over the serving registration and recover the
        # requests the primary died holding
        res = proc.execute(AGS.single(
            Guard.in_(self.main, self.name, "serving", primary_host,
                      formal(object, "oldprog")),
            [Op.move(ref("oldprog"), self.main, self.name, "req",
                     formal(int), formal(object))],
        ))
        assert res.succeeded, res.error
        return self.serve(proc, my_host)

    # ------------------------------------------------------------------ #
    # demo orchestration
    # ------------------------------------------------------------------ #

    def run_with_failover(
        self,
        n_requests: int,
        payloads: Callable[[int], Any],
        *,
        crash_after: int,
        primary_host: int = 101,
        backup_host: int = 102,
    ) -> dict[str, Any]:
        """Serve *n_requests* with the primary crashing mid-run.

        Returns ``{"replies", "primary_answered", "backup_answered"}``.
        """
        rt = self.runtime
        hp = rt.eval_(
            lambda proc, h: self.serve(proc, h, crash_after=crash_after),
            primary_host,
        )
        hb = rt.eval_(self.backup, primary_host, backup_host)

        replies: dict[int, Any] = {}
        client_done: list[int] = []

        def client(proc: ProcessView) -> None:
            for i in range(n_requests):
                replies[i] = self.request(proc, i, payloads(i))
            client_done.append(1)

        hc = rt.eval_(client)
        # wait for the primary to die, then deliver the failure notification
        while not hp.done:
            time.sleep(0.002)
        rt.inject_failure(primary_host)
        primary_answered = hp.join(timeout=30)
        hc.join(timeout=30)
        self.shutdown()
        backup_answered = hb.join(timeout=30)
        return {
            "replies": replies,
            "primary_answered": primary_answered,
            "backup_answered": backup_answered,
        }
