"""Ordered streams on tuple space — the classic in-stream/out-stream idiom.

Linda programs build ordered, multi-producer/multi-consumer streams from
an index pair: a ``head`` counter (next element to consume), a ``tail``
counter (next slot to produce into), and one tuple per element.  Classic
Linda implements the counters with the in-then-out update, inheriting all
of Sec. 2.2's crash windows: a producer dying between ``in(tail)`` and
``out(tail+1)`` wedges the stream forever.

The FT-Linda version makes each transition one AGS:

- **append**: ``< in(tail,?t) => out(elem,t,v); out(tail,t+1) >`` — the
  element and the counter move together;
- **pop** (multi-consumer): read the head index, block on that element's
  existence, then atomically ``< in(head,h) => in(elem,h,?v); out(head,h+1) >``
  — the guard's exact-match on ``h`` makes it a CAS: if another consumer
  got there first the statement blocks, so we re-read and retry.

On a stable tuple space the stream (contents *and* cursors) survives any
crash, and every element is consumed exactly once.
"""

from __future__ import annotations

from typing import Any

from repro.core.ags import AGS, Guard, Op, ref
from repro.core.spaces import TSHandle
from repro.core.tuples import formal

__all__ = ["TupleStream"]


class TupleStream:
    """A named, ordered, exactly-once stream in tuple space *ts*."""

    def __init__(self, ts: TSHandle, name: str):
        self.ts = ts
        self.name = name

    def create(self, api: Any) -> None:
        """Initialize the cursors (call once)."""
        api.out(self.ts, self.name, "head", 0)
        api.out(self.ts, self.name, "tail", 0)

    # ------------------------------------------------------------------ #
    # producing
    # ------------------------------------------------------------------ #

    def append(self, api: Any, value: Any) -> int:
        """Atomically append *value*; returns its index."""
        res = api.execute(AGS.single(
            Guard.in_(self.ts, self.name, "tail", formal(int, "t")),
            [
                Op.out(self.ts, self.name, "elem", ref("t"), value),
                Op.out(self.ts, self.name, "tail", ref("t") + 1),
            ],
        ))
        return res["t"]

    # ------------------------------------------------------------------ #
    # consuming
    # ------------------------------------------------------------------ #

    def pop(self, api: Any) -> Any:
        """Withdraw the next element, blocking; multi-consumer safe."""
        while True:
            h = api.rd(self.ts, self.name, "head", formal(int))[2]
            # wait until slot h exists (a producer will make it)
            api.rd(self.ts, self.name, "elem", h, formal())
            # CAS on the head: succeeds only if we are still the consumer
            # entitled to slot h
            res = api.execute(AGS([
                _claim_branch(self.ts, self.name, h),
                _lost_race_branch(),
            ]))
            if res.fired == 0:
                return res["v"]
            # somebody else advanced the head; retry with the new index

    def try_pop(self, api: Any) -> Any | None:
        """Non-blocking pop with strong probe semantics."""
        h_t = api.rdp(self.ts, self.name, "head", formal(int))
        if h_t is None:
            return None
        h = h_t[2]
        res = api.execute(AGS([
            _claim_if_present_branch(self.ts, self.name, h),
            _lost_race_branch(),
        ]))
        if res.fired == 0:
            return res["v"]
        return None

    def peek_range(self, api: Any) -> tuple[int, int]:
        """(head, tail): indices of the next pop and the next append."""
        h = api.rd(self.ts, self.name, "head", formal(int))[2]
        t = api.rd(self.ts, self.name, "tail", formal(int))[2]
        return h, t

    def length(self, api: Any) -> int:
        h, t = self.peek_range(api)
        return t - h


def _claim_branch(ts: TSHandle, name: str, h: int):
    from repro.core.ags import Branch

    return Branch(
        Guard.in_(ts, name, "head", h),
        [
            Op.in_(ts, name, "elem", h, formal(object, "v")),
            Op.out(ts, name, "head", h + 1),
        ],
    )


def _claim_if_present_branch(ts: TSHandle, name: str, h: int):
    """Like _claim_branch but aborts cleanly when slot h is empty."""
    from repro.core.ags import Branch

    return Branch(
        Guard.inp(ts, name, "elem", h, formal(object, "v")),
        [
            Op.in_(ts, name, "head", h),
            Op.out(ts, name, "head", h + 1),
        ],
    )


def _lost_race_branch():
    from repro.core.ags import Branch

    return Branch(Guard.true(), [])
