"""Fault-tolerant bag-of-tasks — the paper's flagship paradigm (Sec. 4).

In the bag-of-tasks (replicated worker) paradigm, the tuple space is
seeded with subtask tuples; workers repeatedly withdraw a subtask, solve
it, and deposit a result.  Its advantages — "transparent scalability,
automatic load balancing, ease of utilizing idle workstation cycles, and
… easy extension to fault-tolerant operation" — are quoted straight from
the paper.

The classic version loses work: a worker that crashes after ``in``-ing a
subtask but before ``out``-ing the result takes the subtask with it.  The
FT-Linda version closes the window with two AGSs and a monitor:

1. **take**: ``< in(bag,"task",?t) => out(progʷ,"task",t) >`` — the
   subtask atomically moves to the worker's *in-progress* space, so it is
   never in limbo;
2. **finish**: ``< in(progʷ,"task",t) => out(results,"result",t,r) >`` —
   the in-progress record converts atomically into a result;
3. **monitor**: blocks on the distinguished *failure tuple*; for each
   worker registered on the dead host it executes
   ``< in(main,"worker",w,h,?prog) => move(prog, bag, "task", ?) >`` —
   atomically deregistering the worker and returning its in-progress
   subtasks to the bag for someone else to redo.

Tasks must be idempotent (redoing one is harmless), the paradigm's usual
requirement.

Both variants are driven by :func:`run_bag_of_tasks`; ``ft=False`` gives
the classic, work-losing version used as the baseline in experiment E6.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.ags import AGS, Guard, Op, ref
from repro.core.runtime import BaseRuntime, ProcessView
from repro.core.spaces import Resilience, Scope, TSHandle
from repro.core.statemachine import FAILURE_TAG
from repro.core.tuples import formal

__all__ = ["BagOfTasks", "failure_monitor", "run_bag_of_tasks"]

#: Poison-pill payload telling a worker to exit.
STOP = "__bot_stop__"

#: First field of worker-registration tuples.
WORKER_TAG = "worker"


class BagOfTasks:
    """Shared state and statements of one bag-of-tasks computation.

    Parameters
    ----------
    runtime:
        The FT-Linda runtime (any backend).
    compute:
        ``compute(payload) -> result``; executed *outside* the AGSs, in
        the worker process, as the paradigm prescribes.
    ft:
        When True (FT-Linda mode) workers record in-progress tuples and a
        monitor recycles them on failure.  When False (classic Linda
        mode), workers use bare ``in``/``out`` — a crash between them
        loses the subtask.
    """

    def __init__(
        self,
        runtime: BaseRuntime,
        compute: Callable[[Any], Any],
        *,
        ft: bool = True,
        name: str = "bot",
    ):
        self.runtime = runtime
        self.compute = compute
        self.ft = ft
        self.name = name
        self.bag = runtime.create_space(f"{name}.bag")
        self.results = runtime.create_space(f"{name}.results")
        self.completed: list[tuple[Any, Any]] = []
        self._reg_ts = runtime.main_ts

    # ------------------------------------------------------------------ #
    # seeding and collecting
    # ------------------------------------------------------------------ #

    def seed(self, payloads: Sequence[Any]) -> None:
        """Deposit one subtask tuple per payload."""
        for p in payloads:
            self.runtime.out(self.bag, "task", p)

    def poison(self, n_workers: int) -> None:
        """Deposit stop pills so idle workers exit."""
        for _ in range(n_workers):
            self.runtime.out(self.bag, "task", STOP)

    def collect(self, n: int, timeout: float | None = None) -> list[tuple[Any, Any]]:
        """Withdraw *n* result tuples, blocking; returns (payload, result)."""
        out = []
        for _ in range(n):
            t = self.runtime.in_(
                self.results, "result", formal(), formal(), timeout=timeout
            )
            out.append((t[1], t[2]))
        return out

    def results_available(self) -> int:
        """Drain currently available results into :attr:`completed`."""
        count = 0
        while True:
            t = self.runtime.inp(self.results, "result", formal(), formal())
            if t is None:
                return count
            self.completed.append((t[1], t[2]))
            count += 1

    # ------------------------------------------------------------------ #
    # the worker
    # ------------------------------------------------------------------ #

    def worker(
        self,
        proc: ProcessView,
        worker_id: int,
        host_id: int,
        should_crash: Callable[[int, int], bool] | None = None,
    ) -> int:
        """Worker process body: returns the number of subtasks completed.

        *should_crash(worker_id, k)* — when it returns True before solving
        the k-th taken subtask, the worker "crashes" (stops dead) inside
        the vulnerable window, leaving its in-progress tuple behind.  The
        caller is then responsible for the failure notification (the
        membership layer's job on a real cluster).
        """
        if self.ft:
            return self._ft_worker(proc, worker_id, host_id, should_crash)
        return self._classic_worker(proc, worker_id, host_id, should_crash)

    def _ft_worker(self, proc, worker_id, host_id, should_crash) -> int:
        prog = proc.create_space(f"{self.name}.prog.{worker_id}")
        proc.out(self._reg_ts, WORKER_TAG, worker_id, host_id, prog)
        take = AGS.single(
            Guard.in_(self.bag, "task", formal(object, "t")),
            [Op.out(prog, "task", ref("t"))],
        )
        done = 0
        while True:
            t = proc.execute(take)["t"]
            if t == STOP:
                # deregister and drop the pill from our in-progress space
                proc.execute(AGS.single(
                    Guard.in_(self._reg_ts, WORKER_TAG, worker_id, host_id,
                              formal(object, "p")),
                    [Op.in_(prog, "task", STOP)],
                ))
                return done
            if should_crash is not None and should_crash(worker_id, done):
                return done  # crash inside the window: prog tuple left behind
            result = self.compute(t)
            proc.execute(AGS.single(
                Guard.in_(prog, "task", t),
                [Op.out(self.results, "result", t, result)],
            ))
            done += 1

    def _classic_worker(self, proc, worker_id, host_id, should_crash) -> int:
        done = 0
        while True:
            t = proc.in_(self.bag, "task", formal())[1]
            if t == STOP:
                return done
            if should_crash is not None and should_crash(worker_id, done):
                return done  # subtask is simply GONE — classic Linda's flaw
            result = self.compute(t)
            proc.out(self.results, "result", t, result)
            done += 1

    # ------------------------------------------------------------------ #
    # the monitor (FT mode only)
    # ------------------------------------------------------------------ #

    def monitor(self, proc: ProcessView, n_failures: int) -> int:
        """Failure monitor for this bag (see :func:`failure_monitor`)."""
        return failure_monitor(proc, self._reg_ts, self.bag, n_failures)


def failure_monitor(
    proc: ProcessView, reg_ts: TSHandle, bag: TSHandle, n_failures: int
) -> int:
    """Recycle dead hosts' in-progress subtasks back into *bag*.

    Handles *n_failures* failure tuples and exits (tests and examples know
    how many crashes they inject; a production monitor loops forever).
    Returns the number of worker registrations recycled.

    The monitor itself is restartable: it only *reads* the failure tuple
    first, recycles every registered worker of that host in individually
    atomic steps, and withdraws the failure tuple last — so a monitor
    crash mid-recovery loses nothing (a successor redoes the remaining
    steps; recycling twice is harmless because each registration tuple can
    be consumed only once).
    """
    recycled = 0
    for _ in range(n_failures):
        h = proc.rd(reg_ts, FAILURE_TAG, formal(int))[1]
        while True:
            # atomically: deregister one worker of host h AND move its
            # in-progress subtasks back into the bag
            res = proc.execute(AGS([
                _recycle_branch(reg_ts, bag, h),
                _done_branch(),
            ]))
            if res.fired != 0:
                break
            recycled += 1
        proc.in_(reg_ts, FAILURE_TAG, h)
    return recycled


def _recycle_branch(reg_ts: TSHandle, bag: TSHandle, host: int):
    from repro.core.ags import Branch

    return Branch(
        Guard.inp(reg_ts, WORKER_TAG, formal(int, "w"), host, formal(object, "prog")),
        [Op.move(ref("prog"), bag, "task", formal(object))],
    )


def _done_branch():
    from repro.core.ags import Branch

    return Branch(Guard.true(), [])


def run_bag_of_tasks(
    runtime: BaseRuntime,
    payloads: Sequence[Any],
    n_workers: int,
    compute: Callable[[Any], Any],
    *,
    ft: bool = True,
    crash_workers: dict[int, int] | None = None,
    collect_timeout: float = 30.0,
) -> dict[str, Any]:
    """Run a complete bag-of-tasks computation on threads.

    Parameters
    ----------
    crash_workers:
        ``{worker_id: after_k_tasks}`` — those workers crash inside the
        vulnerable window after completing ``after_k_tasks`` subtasks.
        Each worker is modeled as its own host (the paper's workers run
        one per processor), so a worker crash triggers one failure tuple.
    collect_timeout:
        Wall-clock bound on waiting for results.  In FT mode all results
        arrive; in classic mode crashed workers' subtasks are lost and the
        run reports how many results never came.

    Returns a report dict: ``results``, ``lost`` (count), ``recycled``.
    """
    crash_workers = dict(crash_workers or {})
    bot = BagOfTasks(runtime, compute, ft=ft)
    bot.seed(payloads)

    def should_crash(wid: int, k: int) -> bool:
        return crash_workers.get(wid, -1) == k

    handles = []
    for w in range(n_workers):
        handles.append(
            runtime.eval_(bot.worker, w, w, should_crash if crash_workers else None)
        )

    mon_handle = None
    if ft and crash_workers:
        mon_handle = runtime.eval_(bot.monitor, len(crash_workers))

    # inject the failure notifications once the doomed workers have died
    import time

    for wid in crash_workers:
        while not handles[wid].done:
            time.sleep(0.002)
        if ft:
            # classic Linda has no failure notification at all — only the
            # FT runtime converts the silent crash into a failure tuple
            runtime.inject_failure(wid)

    # every crashing worker dies holding exactly one subtask; in FT mode
    # the monitor recycles it (all results arrive), in classic mode it is
    # lost for good
    expected = len(payloads) if ft else len(payloads) - len(crash_workers)
    results: list[tuple[Any, Any]] = []
    for _ in range(expected):
        t = runtime.in_(
            bot.results, "result", formal(), formal(), timeout=collect_timeout
        )
        results.append((t[1], t[2]))
    # confirm nothing beyond the expected count straggles in (classic mode:
    # the lost subtasks really are gone)
    lost = len(payloads) - len(results)
    bot.poison(n_workers)
    for wid, h in enumerate(handles):
        if wid in crash_workers:
            continue
        h.join(timeout=collect_timeout)
    recycled = mon_handle.join(timeout=collect_timeout) if mon_handle else 0
    return {"results": results, "lost": lost, "recycled": recycled}
