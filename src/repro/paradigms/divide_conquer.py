"""Fault-tolerant divide and conquer (paper Sec. 4.1).

"The basic structure of divide and conquer is similar to the bag-of-tasks
… The difference comes in the actions of the worker.  Here, upon
withdrawing a subtask tuple, the worker first determines if the subtask is
small enough … If so, the task is performed and the result tuple
deposited" — otherwise it splits the subtask and deposits the pieces.

This implementation adds the bookkeeping that makes termination and
combination fault-tolerant too:

- a **pending counter** tuple tracks how many subtasks exist; splitting a
  task into *k* children adjusts it by ``k-1`` *in the same AGS* that
  retires the parent, so a crash can never corrupt the count;
- an **accumulator** tuple folds results with a *registered deterministic
  combine function*, again in the same AGS that retires the solved task —
  result delivery and task retirement are indivisible;
- in-progress tuples + the bag-of-tasks monitor give crash recovery: a
  dead worker's taken-but-unfinished subtasks return to the bag.

The computation is complete exactly when the pending counter hits zero,
which any process can await with a plain blocking ``rd``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from repro._errors import AGSError
from repro.core.ags import AGS, Const, Expr, Guard, Op, ref, register_function
from repro.core.runtime import BaseRuntime, ProcessView
from repro.core.statemachine import FAILURE_TAG
from repro.core.tuples import formal
from repro.paradigms.bag_of_tasks import STOP, WORKER_TAG, failure_monitor

__all__ = ["run_divide_conquer", "ensure_function"]


def ensure_function(name: str, fn: Callable[..., Any]) -> str:
    """Register *fn* as a deterministic AGS function, idempotently."""
    try:
        register_function(name, fn)
    except AGSError:
        pass  # already registered (same name implies same function here)
    return name


def run_divide_conquer(
    runtime: BaseRuntime,
    root_task: Any,
    n_workers: int,
    *,
    is_small: Callable[[Any], bool],
    solve: Callable[[Any], Any],
    split: Callable[[Any], Sequence[Any]],
    combine_name: str,
    combine: Callable[[Any, Any], Any],
    identity: Any,
    crash_workers: dict[int, int] | None = None,
    name: str = "dc",
) -> dict[str, Any]:
    """Solve *root_task* by fault-tolerant divide and conquer.

    Parameters
    ----------
    is_small / solve / split:
        The problem decomposition, executed in worker processes.
    combine_name / combine / identity:
        An associative fold for results; *combine* is registered as a
        deterministic function so the accumulation happens *inside* the
        retirement AGS.
    crash_workers:
        ``{worker_id: after_k_subtasks}`` crash schedule, as in
        :func:`~repro.paradigms.bag_of_tasks.run_bag_of_tasks`.

    Returns ``{"result", "solved", "recycled"}``.
    """
    ensure_function(combine_name, combine)
    crash_workers = dict(crash_workers or {})
    main = runtime.main_ts
    bag = runtime.create_space(f"{name}.bag")
    runtime.out(main, name, "pending", 1)
    runtime.out(main, name, "acc", identity)
    runtime.out(bag, "task", root_task)

    def should_crash(wid: int, k: int) -> bool:
        return crash_workers.get(wid, -1) == k

    def worker(proc: ProcessView, wid: int) -> int:
        prog = proc.create_space(f"{name}.prog.{wid}")
        proc.out(main, WORKER_TAG, wid, wid, prog)
        take = AGS.single(
            Guard.in_(bag, "task", formal(object, "t")),
            [Op.out(prog, "task", ref("t"))],
        )
        handled = 0
        while True:
            t = proc.execute(take)["t"]
            if t == STOP:
                proc.execute(AGS.single(
                    Guard.in_(main, WORKER_TAG, wid, wid, formal(object, "p")),
                    [Op.in_(prog, "task", STOP)],
                ))
                return handled
            if crash_workers and should_crash(wid, handled):
                return handled  # dies holding an in-progress subtask
            if is_small(t):
                r = solve(t)
                # retire + accumulate + decrement, indivisibly
                proc.execute(AGS.single(
                    Guard.in_(prog, "task", t),
                    [
                        Op.in_(main, name, "acc", formal(object, "a")),
                        Op.out(main, name, "acc",
                               Expr(combine_name, (ref("a"), Const(r)))),
                        Op.in_(main, name, "pending", formal(int, "p")),
                        Op.out(main, name, "pending", ref("p") - 1),
                    ],
                ))
            else:
                children = list(split(t))
                body = [Op.out(bag, "task", c) for c in children]
                body += [
                    Op.in_(main, name, "pending", formal(int, "p")),
                    Op.out(main, name, "pending", ref("p") + (len(children) - 1)),
                ]
                proc.execute(AGS.single(Guard.in_(prog, "task", t), body))
            handled += 1

    handles = [runtime.eval_(worker, w) for w in range(n_workers)]

    recycled = 0
    if crash_workers:
        mon = runtime.eval_(failure_monitor, main, bag, len(crash_workers))
        for wid in crash_workers:
            while not handles[wid].done:
                time.sleep(0.002)
            runtime.inject_failure(wid)
    # completion: the pending counter reaches zero
    runtime.rd(main, name, "pending", 0)
    if crash_workers:
        recycled = mon.join(timeout=30)
    for _ in range(n_workers):
        runtime.out(bag, "task", STOP)
    solved = 0
    for wid, h in enumerate(handles):
        if wid in crash_workers:
            continue
        solved += h.join(timeout=30)
    result = runtime.in_(main, name, "acc", formal())[2]
    runtime.in_(main, name, "pending", 0)
    return {"result": result, "solved": solved, "recycled": recycled}
