"""Reusable barrier synchronization on tuple space.

A classic Linda coordination structure, here built from a single AGS so
that the arrival count can never be lost to a crash between the ``in`` and
the ``out`` of the counter (the distributed-variable failure mode of
Sec. 2.2 applies verbatim to barrier counters).

Sense-reversing design: a *generation* tuple ``(name,"gen",g)`` and a
counter ``(name,"count",k)``.  Arrivals atomically increment the counter;
the last arriver (it knows, because the AGS binds the old count) atomically
resets the counter and advances the generation; everyone else blocks
reading the next generation.  The barrier is immediately reusable.
"""

from __future__ import annotations

from typing import Any

from repro.core.ags import AGS, Guard, Op, ref
from repro.core.spaces import TSHandle
from repro.core.tuples import formal

__all__ = ["Barrier"]


class Barrier:
    """A reusable n-party barrier in tuple space *ts*.

    One party (usually the coordinator) calls :meth:`setup` once; every
    participant then calls :meth:`arrive` per phase.
    """

    def __init__(self, api: Any, ts: TSHandle, n: int, name: str = "barrier"):
        if n < 1:
            raise ValueError("a barrier needs at least one party")
        self.api = api
        self.ts = ts
        self.n = n
        self.name = name

    def setup(self) -> None:
        """Create the counter and generation tuples (call exactly once)."""
        self.api.out(self.ts, self.name, "count", 0)
        self.api.out(self.ts, self.name, "gen", 0)

    def teardown(self) -> None:
        self.api.in_(self.ts, self.name, "count", formal(int))
        self.api.in_(self.ts, self.name, "gen", formal(int))

    def arrive(self, api: Any | None = None) -> int:
        """Block until all *n* parties arrive; returns the new generation.

        Pass a per-process *api* (a :class:`~repro.core.runtime.ProcessView`)
        when workers share one Barrier object.
        """
        api = api if api is not None else self.api
        # increment the count and read the generation in ONE atomic step —
        # reading it separately races with a fast last-arriver advancing
        # the generation first (a body ``rd`` binds without withdrawing)
        res = api.execute(AGS.single(
            Guard.in_(self.ts, self.name, "count", formal(int, "k")),
            [
                Op.rd(self.ts, self.name, "gen", formal(int, "g")),
                Op.out(self.ts, self.name, "count", ref("k") + 1),
            ],
        ))
        k, g = res["k"], res["g"]
        if k + 1 == self.n:
            # last arriver: reset count and open the next generation, atomically
            api.execute(AGS.single(
                Guard.in_(self.ts, self.name, "count", self.n),
                [
                    Op.out(self.ts, self.name, "count", 0),
                    Op.in_(self.ts, self.name, "gen", formal(int, "g")),
                    Op.out(self.ts, self.name, "gen", ref("g") + 1),
                ],
            ))
            return g + 1
        # wait for the generation to advance
        api.rd(self.ts, self.name, "gen", g + 1)
        return g + 1
