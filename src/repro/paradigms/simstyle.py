"""Sec. 4 paradigms as simulation-side generator processes.

The thread-based paradigm implementations (:mod:`repro.paradigms`) run on
the synchronous :class:`~repro.core.runtime.BaseRuntime` API.  Client
processes on the *simulated* cluster are generators instead, so this
module provides the same paradigm roles in generator form — the exact
statements, yielded:

- :func:`ft_worker` — take-AGS, compute, finish-AGS, with an optional
  freeze point modeling a crash window;
- :func:`failure_monitor` — blocks on the distinguished failure tuple and
  recycles the dead host's registered workers;
- :func:`collector` — withdraws result tuples;
- :func:`seed_bag` — creates and fills the bag space.

They are used by the distributed-paradigm tests and by the E6b benchmark,
where the failure tuple comes from the real membership protocol (crash →
silence → suspicion → ordered HostFailed) rather than injection.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.ags import AGS, Branch, Guard, Op, ref
from repro.core.statemachine import FAILURE_TAG
from repro.core.tuples import formal
from repro.sim.process import hold

__all__ = ["collector", "failure_monitor", "ft_worker", "seed_bag"]

#: Poison-pill payload telling a sim worker to exit.
STOP = "stop"


def seed_bag(view, payloads: Sequence[Any], handle_tag: str = "bag-handle"):
    """Create the bag space, fill it, and publish its handle."""
    bag = yield view.create_space("bag")
    for p in payloads:
        yield view.out(bag, "task", p)
    yield view.out(view.main_ts, handle_tag, bag)
    return bag


def ft_worker(
    view,
    bag,
    wid: int,
    *,
    compute_us: float = 2_000.0,
    compute: Callable[[Any], Any] | None = None,
    freeze_after: int | None = None,
):
    """The paper's FT worker: take atomically, compute, finish atomically.

    ``freeze_after=k`` freezes the worker (forever) right after taking its
    (k+1)-th task — modeling the crash window; the test/bench then crashes
    the host and the monitor recycles the frozen task.
    Returns the number of tasks completed.
    """
    prog = yield view.create_space(f"prog.{wid}")
    yield view.out(view.main_ts, "worker", wid, view.host_id, prog)
    take = AGS.single(
        Guard.in_(bag, "task", formal(object, "t")),
        [Op.out(prog, "task", ref("t"))],
    )
    fn = compute if compute is not None else (lambda t: t * t)
    done = 0
    while True:
        res = yield view.execute(take)
        t = res["t"]
        if t == STOP:
            yield view.execute(AGS.single(
                Guard.in_(view.main_ts, "worker", wid, view.host_id,
                          formal(object, "p")),
                [Op.in_(prog, "task", STOP)],
            ))
            return done
        if freeze_after is not None and done >= freeze_after:
            yield hold(10_000_000_000.0)  # the crash window, frozen open
        yield hold(compute_us)
        yield view.execute(AGS.single(
            Guard.in_(prog, "task", t),
            [Op.out(view.main_ts, "result", t, fn(t))],
        ))
        done += 1


def failure_monitor(view, bag, n_failures: int):
    """Recycle failed hosts' in-progress tasks; exits after *n_failures*.

    Restartable by construction: the failure tuple is only *read* until
    every registered worker of the dead host has been recycled, each in
    one atomic statement.
    """
    recycled = 0
    for _ in range(n_failures):
        t = yield view.rd(view.main_ts, FAILURE_TAG, formal(int))
        h = t[1]
        while True:
            res = yield view.execute(AGS([
                Branch(
                    Guard.inp(view.main_ts, "worker", formal(int, "w"), h,
                              formal(object, "prog")),
                    [Op.move(ref("prog"), bag, "task", formal(object))],
                ),
                Branch(Guard.true(), []),
            ]))
            if res.fired != 0:
                break
            recycled += 1
        yield view.in_(view.main_ts, FAILURE_TAG, h)
    return recycled


def collector(view, n: int):
    """Withdraw *n* result tuples; returns [(payload, result), …]."""
    got = []
    for _ in range(n):
        t = yield view.in_(view.main_ts, "result", formal(), formal())
        got.append((t[1], t[2]))
    return got


def poison(view, bag, n_workers: int):
    """Deposit stop pills for *n_workers*."""
    for _ in range(n_workers):
        yield view.out(bag, "task", STOP)
