"""Distributed consensus on tuple space — possible only with AGS.

The paper's sharpest motivation for multi-op atomicity (Sec. 2.2):
"distributed consensus, in which multiple processes in a distributed
system reach agreement on some common value, is an important building
block for many fault-tolerant systems.  However, Linda with single-op
atomicity has been shown to be insufficient to reach distributed
consensus with more than two processes in the presence of failures"
(citing Segall [38]).

With an AGS the construction is three lines.  Every participant:

1. deposits its proposal;
2. runs the *decide* statement — a disjunction that atomically either
   observes an existing decision or converts the oldest proposal into
   the decision::

       < rdp(ts, name, "decision", ?d)                      # already decided
         or in(ts, name, "proposal", ?pid, ?v)
              => out(ts, name, "decision", v) >             # decide now

3. reads the decision.

The total order serializes the decide statements: exactly one executes
its second branch, every later one hits the first.  Crashes anywhere are
harmless — a participant that dies before deciding left only its proposal
behind; one that dies after deciding left the decision for everyone.
**Agreement**, **validity** (the decision is someone's proposal) and
**wait-freedom for survivors** follow directly from AGS atomicity; the
property tests drive all three.
"""

from __future__ import annotations

from typing import Any

from repro.core.ags import AGS, Branch, Guard, Op, ref
from repro.core.spaces import TSHandle
from repro.core.tuples import formal

__all__ = ["Consensus"]


class Consensus:
    """One single-shot consensus instance named *name* in space *ts*."""

    def __init__(self, ts: TSHandle, name: str):
        self.ts = ts
        self.name = name

    # ------------------------------------------------------------------ #
    # the three steps
    # ------------------------------------------------------------------ #

    def propose(self, api: Any, pid: int, value: Any) -> None:
        """Step 1: make *value* available as a proposal."""
        api.out(self.ts, self.name, "proposal", pid, value)

    def decide_statement(self) -> AGS:
        """Step 2's AGS (exposed so tests/benchmarks can inspect it).

        A fully *blocking* disjunction: it waits until either a decision
        exists (first branch, non-destructive read) or some proposal does
        (second branch, which converts it into the decision atomically).
        """
        return AGS([
            Branch(
                Guard.rd(self.ts, self.name, "decision", formal(object, "d")),
                [],
            ),
            Branch(
                Guard.in_(
                    self.ts, self.name, "proposal",
                    formal(int, "pid"), formal(object, "v"),
                ),
                [Op.out(self.ts, self.name, "decision", ref("v"))],
            ),
        ])

    def decide(self, api: Any) -> Any:
        """Steps 2+3: run the decide statement; returns the agreed value.

        Safe to call any number of times from any number of processes;
        all callers return the same value.  Blocks until at least one
        proposal (or a decision) exists.
        """
        res = api.execute(self.decide_statement())
        return res["d"] if res.fired == 0 else res["v"]

    def agree(self, api: Any, pid: int, value: Any) -> Any:
        """The full protocol: propose *value*, then decide."""
        self.propose(api, pid, value)
        return self.decide(api)

    def decided_value(self, api: Any) -> Any | None:
        """Peek: the decision if one exists, else None (strong rdp)."""
        t = api.rdp(self.ts, self.name, "decision", formal())
        return None if t is None else t[2]
