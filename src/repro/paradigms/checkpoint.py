"""Checkpoint and recovery on stable tuple space.

The paper's stable storage is motivated exactly this way (Sec. 2.2):
"checkpoint and recovery is a technique based on saving key values in
stable storage so that an application process can recover to some
intermediate state following a failure" — and private stable spaces exist
so a process can checkpoint *its own* state without interference.

Two tools:

- :class:`Checkpoint` — a single atomically-replaced (step, state) record.
  ``save`` is one AGS, so there is never a moment with zero or two
  checkpoints, no matter when the saver crashes;
- :func:`checkpoint_space` — snapshot a whole (e.g. volatile scratch)
  space into a stable one in one atomic statement, built from the
  paper's ``move``/``copy`` primitives.

:func:`run_with_recovery` demonstrates the full loop: a worker computes
``n_steps`` iterations checkpointing as it goes, crashes at a chosen
step, and a successor resumes from the last checkpoint — recomputing only
the steps after it.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.ags import AGS, Branch, Guard, Op, ref
from repro.core.runtime import BaseRuntime
from repro.core.spaces import Resilience, Scope, TSHandle
from repro.core.tuples import formal

__all__ = ["Checkpoint", "checkpoint_space", "run_with_recovery"]


class Checkpoint:
    """An atomically-replaced (step, state) record in a stable space."""

    def __init__(self, ts: TSHandle, name: str):
        if not ts.stable:
            raise ValueError(
                "checkpoints belong in a STABLE space; a volatile one "
                "vanishes with exactly the crash it should survive"
            )
        self.ts = ts
        self.name = name

    def save(self, api: Any, step: int, state: Any) -> None:
        """Replace the checkpoint (or create it) — all-or-nothing."""
        api.execute(AGS([
            Branch(
                Guard.in_(self.ts, self.name, formal(int), formal(object)),
                [Op.out(self.ts, self.name, step, state)],
            ),
            Branch(
                Guard.true(),
                [Op.out(self.ts, self.name, step, state)],
            ),
        ]))

    def load(self, api: Any) -> tuple[int, Any] | None:
        """The last saved (step, state), or None if never saved."""
        t = api.rdp(self.ts, self.name, formal(int), formal(object))
        return None if t is None else (t[1], t[2])

    def clear(self, api: Any) -> bool:
        """Remove the checkpoint; True if one existed."""
        return api.inp(self.ts, self.name, formal(int), formal(object)) is not None


def checkpoint_space(
    api: Any,
    scratch: TSHandle,
    stable: TSHandle,
    *pattern: Any,
    tag: str = "ckpt",
) -> None:
    """Atomically replace *stable*'s snapshot with *scratch*'s contents.

    One AGS: drop the old snapshot (``in`` the generation marker + ``move``
    the old tuples out of existence is not expressible without a trash
    space, so we use one), then ``copy`` the scratch contents in.  The
    whole transition is invisible to concurrent readers: they see the old
    snapshot or the new one, never a mixture.
    """
    trash = api.create_space(f"{tag}.trash", Resilience.STABLE, Scope.SHARED)
    api.execute(AGS.atomic(
        Op.move(stable, trash, *pattern),
        Op.copy(scratch, stable, *pattern),
    ))
    api.destroy_space(trash)


def run_with_recovery(
    runtime: BaseRuntime,
    name: str,
    step_fn: Callable[[int, Any], Any],
    initial_state: Any,
    n_steps: int,
    *,
    crash_at: int | None = None,
) -> dict[str, Any]:
    """Compute ``state = step_fn(i, state)`` for i in [0, n_steps).

    The worker checkpoints after every step.  With ``crash_at=k`` it dies
    right after completing step k (before anything else); a successor
    process then resumes from the checkpoint.  Returns the final state
    plus the recovery bookkeeping, so tests can assert that only the
    remaining steps were recomputed.
    """
    ckpt = Checkpoint(runtime.main_ts, name)
    executed: list[int] = []

    def worker(proc, crash: int | None) -> Any:
        loaded = ckpt.load(proc)
        step, state = (0, initial_state) if loaded is None else (
            loaded[0] + 1, loaded[1]
        )
        while step < n_steps:
            state = step_fn(step, state)
            executed.append(step)
            ckpt.save(proc, step, state)
            if crash is not None and step == crash:
                return None  # crash: stop dead, checkpoint intact
            step += 1
        return state

    h = runtime.eval_(worker, crash_at)
    result = h.join(timeout=60)
    recovered_from = None
    if crash_at is not None and result is None:
        loaded = ckpt.load(runtime)
        recovered_from = None if loaded is None else loaded[0]
        h2 = runtime.eval_(worker, None)
        result = h2.join(timeout=60)
    return {
        "result": result,
        "steps_executed": list(executed),
        "recovered_from": recovered_from,
    }
