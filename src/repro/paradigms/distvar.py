"""The distributed variable — the paper's motivating example (Sec. 2.2).

A distributed variable is a value stored as a tuple so any process can
read or modify it:

=============  =========================================
Initialization ``out(count, value)``
Inspection     ``rd(count, ?value)``
Updating       ``in(count, ?old)`` … ``out(count, new)``
=============  =========================================

The paper's point: in classic Linda the *update* row is two separate
operations.  A crash between the ``in`` and the ``out`` loses the variable
forever (every later ``in``/``rd`` blocks); a concurrent reader can also
observe the variable missing.  FT-Linda's AGS closes the window:
``< in(count,?old) => out(count, f(old)) >`` is all-or-nothing.

:class:`DistributedVariable` packages both forms — the safe AGS update and
the deliberately unsafe classic one (:meth:`DistributedVariable.unsafe_in`
/ :meth:`unsafe_out`) that benchmarks E10 uses to demonstrate the failure
mode.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.ags import AGS, Guard, Op, Operand, as_operand, ref
from repro.core.runtime import ProcessView
from repro.core.spaces import TSHandle
from repro.core.tuples import Formal, formal

__all__ = ["DistributedVariable"]


class DistributedVariable:
    """A named, typed shared variable in a tuple space.

    Parameters
    ----------
    api:
        Anything exposing the runtime operation API: a
        :class:`~repro.core.runtime.BaseRuntime` or a
        :class:`~repro.core.runtime.ProcessView`.
    ts:
        The tuple space holding the variable (stable ⇒ the variable
        survives crashes: a *recoverable* distributed variable).
    name:
        First tuple field, e.g. ``("count", 7)`` for ``name="count"``.
    vtype:
        Exact type of the value; used in every match pattern.
    """

    def __init__(self, api: Any, ts: TSHandle, name: str, vtype: type = int):
        self.api = api
        self.ts = ts
        self.name = name
        self.vtype = vtype

    # -- lifecycle --------------------------------------------------------- #

    def init(self, value: Any) -> None:
        """Initialization: ``out(name, value)``."""
        self.api.out(self.ts, self.name, value)

    def destroy(self) -> Any:
        """Withdraw the variable; returns its final value."""
        return self.api.in_(self.ts, self.name, formal(self.vtype))[1]

    # -- inspection ---------------------------------------------------------- #

    def value(self) -> Any:
        """Inspection: ``rd(name, ?value)`` (blocks while mid-unsafe-update)."""
        return self.api.rd(self.ts, self.name, formal(self.vtype))[1]

    def try_value(self) -> Any | None:
        """Non-blocking inspection with strong ``rdp`` semantics."""
        t = self.api.rdp(self.ts, self.name, formal(self.vtype))
        return None if t is None else t[1]

    def exists(self) -> bool:
        return self.try_value() is not None

    # -- safe (atomic) updates ------------------------------------------------ #

    def update_ags(self, make_new: Callable[[Operand], Any]) -> AGS:
        """Build the atomic-update statement without executing it.

        *make_new* receives the bound old value as an operand (``ref``) and
        returns the operand for the new value — e.g.
        ``lambda old: old + 1``.  Because operands compose only registered
        deterministic functions, the resulting statement is replica-safe.
        """
        old = ref("_dv_old")
        new = as_operand(make_new(old))
        return AGS.single(
            Guard.in_(self.ts, self.name, Formal(self.vtype, "_dv_old")),
            [Op.out(self.ts, self.name, new)],
        )

    def update(self, make_new: Callable[[Operand], Any]) -> Any:
        """Atomically replace the value; returns the *old* value.

        This is the paper's ``< in(count,?old) => out(count,new) >``.
        """
        res = self.api.execute(self.update_ags(make_new))
        return res["_dv_old"]

    def add(self, delta: Any) -> Any:
        """Atomic ``+= delta``; returns the old value."""
        return self.update(lambda old: old + delta)

    def set(self, value: Any) -> Any:
        """Atomic overwrite; returns the old value."""
        return self.update(lambda _old: as_operand(value))

    def compare_and_set(self, expected: Any, value: Any) -> bool:
        """Atomic CAS using guard matching on the expected value."""
        res = self.api.execute(
            AGS([
                _cas_branch(self.ts, self.name, expected, value),
                _default_branch(),
            ])
        )
        return res.fired == 0

    # -- unsafe (classic Linda) updates ---------------------------------------- #

    def unsafe_in(self) -> Any:
        """First half of a classic two-op update: withdraw the variable.

        Between this call and :meth:`unsafe_out` the variable does not
        exist.  A crash here loses it — the failure window the paper's
        Sec. 2.2 describes.  Provided for the baseline experiments.
        """
        return self.api.in_(self.ts, self.name, formal(self.vtype))[1]

    def unsafe_out(self, value: Any) -> None:
        """Second half of a classic two-op update."""
        self.api.out(self.ts, self.name, value)


def _cas_branch(ts: TSHandle, name: str, expected: Any, value: Any):
    from repro.core.ags import Branch

    return Branch(
        Guard.in_(ts, name, expected),
        [Op.out(ts, name, value)],
    )


def _default_branch():
    from repro.core.ags import Branch

    return Branch(Guard.true(), [])
