"""The paper's ordered-update pipeline, implemented exactly once.

FT-Linda keeps replicated tuple spaces consistent with a single totally
ordered command stream per update (Sec. 5).  This package is that
pipeline, factored out of any particular delivery mechanism:

- :class:`~repro.replication.group.ReplicaGroup` — the transport-agnostic
  core: command sequencing (with batching), per-client parking,
  origin-replica completion matching with duplicate suppression,
  crash/recovery bookkeeping, in-band queries, runtime metrics, and an
  opt-in liveness plane (:class:`~repro.replication.group.LivenessPolicy`:
  heartbeat + probe failure detector, self-healing auto-recovery);
- :class:`~repro.replication.sharding.ShardedGroup` — the
  content-partitioned router: N independent ReplicaGroups (one sequencer
  each), single-shard statements delegated whole, cross-shard statements
  run as a deterministic extract/execute/scatter rung;
- :class:`~repro.replication.transport.Transport` — the seam a delivery
  mechanism implements: FIFO delivery of opaque items to N replica
  workers and a sink for what they emit;
- :mod:`~repro.replication.worker` — the one replica apply loop both
  bundled transports run (in a thread, or in a spawned process).

The threads and multiprocessing backends in :mod:`repro.parallel` are
thin adapters over this package; a future asyncio or socket backend is
one new Transport implementation.
"""

from repro.replication.group import LivenessPolicy, ReplicaGroup
from repro.replication.sharding import ShardedGroup
from repro.replication.transport import (
    InMemoryTransport,
    PickleQueueTransport,
    Transport,
)

__all__ = [
    "InMemoryTransport",
    "LivenessPolicy",
    "PickleQueueTransport",
    "ReplicaGroup",
    "ShardedGroup",
    "Transport",
]
