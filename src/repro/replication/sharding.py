"""ShardedGroup: content-partitioned shard groups over independent sequencers.

The classic deployment totally orders *every* AGS through one sequencer
(:class:`~repro.replication.group.ReplicaGroup`), so write throughput is
capped at a single thread's ordering rate no matter how many replicas or
cores exist.  This module lifts that cap by partitioning the tuple space
by content: tuples live on the shard selected by a stable hash of
``(space, first-field value)`` (:func:`repro.core.matching.shard_of` —
never builtin ``hash()``, which is salted per process), and each shard is
a full, independently sequenced :class:`ReplicaGroup` with its own
transport, replicas, read fast path and liveness monitor.

Routing
-------
The AGS classifier (:meth:`repro.core.ags.AGS.shard_set`) reduces a
statement to the set of partitions it can touch:

- **single-shard AGS** — every guard/body template names a static space
  and a constant first field, and they all map to one shard.  This is the
  common case (bag-of-tasks ``("task", …)`` channels, distvar counters,
  barriers) and keeps today's cost exactly: one multicast on that shard's
  sequencer, that shard's read fast path, native parking and ordered
  cancel.  Different channels land on different shards and order/apply
  in parallel — that is the whole point.

- **cross-shard / wildcard AGS** — templates span shards, use a wildcard
  first field, or compute the target space at execution time.  These run
  a deterministic *rung* serialized by a coordinator lock: (1) an ordered
  :class:`~repro.core.statemachine.ExtractTuples` withdraws each involved
  partition from its shard, visiting shards in ascending shard-id order;
  (2) the coordinator replays the withdrawn tuples (sorted by original
  sequence number, preserving oldest-match priority) into a scratch
  :class:`~repro.core.statemachine.TSStateMachine` holding only the
  involved spaces and applies the AGS there; (3) an ordered
  :class:`~repro.core.statemachine.DepositTuples` scatters the surviving
  and produced tuples back to their owning shards, again in ascending
  shard order, waking any single-shard waiters.  A blocking cross-shard
  AGS that cannot fire scatters everything back unchanged and retries
  with backoff until its timeout.  Correct but slow — by design: the
  throughput-critical traffic is single-shard.

Invariants
----------
- Within a shard, the classic guarantee holds unchanged: one total order,
  identical replicas, strong ``inp``/``rdp``.
- Across shards, the rung's fixed visiting order plus the coordinator
  lock serialize cross-shard statements with respect to each other, and
  each Extract/Deposit occupies one slot in every involved shard's order,
  so single-shard traffic serializes against the rung per shard.
- Space lifecycle commands fan out to every shard under one lock in
  fixed order, so every shard's registry allocates identical handle ids.
- Failure/recovery tuples: membership commands are broadcast to every
  shard group stamped with ``shard_info``, and each shard deposits the
  notification only into the ``(space, tag)`` partitions it owns — one
  failure tuple per space globally, at an ordered point in each shard.

With ``n_shards=1`` every call delegates straight to the single wrapped
group — byte-for-byte the pre-sharding behaviour.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable

from repro._errors import TimeoutError_
from repro.core.ags import AGS, AGSResult
from repro.core.matching import ANY_FIRST, shard_of, stable_hash
from repro.core.spaces import Resilience, Scope, SpaceRegistry, TSHandle
from repro.core.statemachine import (
    CreateSpace,
    DepositTuples,
    DestroySpace,
    ExecuteAGS,
    ExtractTuples,
    TSStateMachine,
)
from repro.obs.metrics import MetricsRegistry, merged
from repro.obs.profile import DEFAULT_HZ, SamplingProfiler, merge_folded
from repro.obs.tracing import FlightRecorder
from repro.replication.group import CLIENT_ORIGIN, LivenessPolicy, ReplicaGroup
from repro.replication.transport import Transport

__all__ = ["ShardedGroup"]

#: Cross-shard retry backoff (seconds): first wait and cap.  A blocking
#: cross-shard AGS polls — it cannot park inside any single shard's order
#: without pinning the tuples of other shards.
_CROSS_RETRY_INITIAL = 0.002
_CROSS_RETRY_MAX = 0.05


class ShardedGroup:
    """N content-partitioned :class:`ReplicaGroup` shards behind one façade.

    *transport_factory* is called once per shard to build that shard's
    private transport (each shard needs its own FIFOs and replica
    workers).  The remaining knobs mirror :class:`ReplicaGroup` and apply
    to every shard; the tracer is shared so one flight recorder sees all
    shards (replica tracks are shard-prefixed).
    """

    def __init__(
        self,
        transport_factory: Callable[[], Transport],
        n_shards: int = 1,
        *,
        batching: bool = True,
        read_fastpath: bool = True,
        tracer: FlightRecorder | None = None,
        liveness: LivenessPolicy | bool | None = None,
        durable_dir: str | None = None,
        durable_fsync: bool = True,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.tracer = tracer
        self.groups: list[ReplicaGroup] = []
        for k in range(n_shards):
            # each shard journals its own ordered stream: shards are
            # independently sequenced, so they recover independently too
            shard_dir = durable_dir
            if durable_dir is not None and n_shards > 1:
                shard_dir = os.path.join(durable_dir, f"shard{k}")
            self.groups.append(
                ReplicaGroup(
                    transport_factory(),
                    batching=batching,
                    read_fastpath=read_fastpath,
                    tracer=tracer,
                    liveness=liveness,
                    name=f"shard{k}" if n_shards > 1 else "",
                    shard_info=(k, n_shards) if n_shards > 1 else None,
                    durable_dir=shard_dir,
                    durable_fsync=durable_fsync,
                )
            )
        self.n_replicas = self.groups[0].n_replicas
        #: Serializes space lifecycle fan-out so every shard's registry
        #: sees create/destroy in the same order (identical handle ids).
        self._space_lock = threading.Lock()
        #: Serializes cross-shard rungs against each other.  Single-shard
        #: traffic never takes this lock.
        self._cross_lock = threading.Lock()
        #: Live handles, maintained at the router (the coordinator needs
        #: the full space list for dynamic-space statements).  Guarded by
        #: _space_lock.
        self._spaces: dict[int, TSHandle] = {}
        #: The façade's own process-wide sampler (see start_profiling).
        self._profiler: SamplingProfiler | None = None
        from repro.core.spaces import MAIN_TS

        self._spaces[MAIN_TS.id] = MAIN_TS

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def shard_of_ags(self, ags: AGS) -> int | None:
        """The single shard *ags* pins to, or ``None`` for the cross path."""
        shards = ags.shard_set(self.n_shards)
        if shards is not None and len(shards) == 1:
            return next(iter(shards))
        return None

    def execute(
        self, ags: AGS, process_id: int, timeout: float | None = None
    ) -> AGSResult:
        """Route one AGS: single-shard fast path or the cross-shard rung."""
        if self.n_shards == 1:
            return self._call_on(self.groups[0], ags, process_id, timeout)
        shards = ags.shard_set(self.n_shards)
        if shards is not None and len(shards) == 1:
            group = self.groups[next(iter(shards))]
            return self._call_on(group, ags, process_id, timeout)
        return self._execute_cross(ags, process_id, timeout, shards)

    def post_ags(self, ags: AGS, process_id: int = 0) -> None:
        """Pipelined submit (no completion wait) — single-shard AGS only."""
        shard = self.shard_of_ags(ags)
        if shard is None:
            raise ValueError(
                "post_ags requires a statically single-shard statement; "
                "cross-shard statements must go through execute()"
            )
        group = self.groups[shard]
        group.post(
            ExecuteAGS(group.next_request_id(), CLIENT_ORIGIN, process_id, ags)
        )

    @staticmethod
    def _call_on(
        group: ReplicaGroup, ags: AGS, process_id: int, timeout: float | None
    ) -> AGSResult:
        return group.call(
            ExecuteAGS(group.next_request_id(), CLIENT_ORIGIN, process_id, ags),
            timeout,
        )

    # ------------------------------------------------------------------ #
    # the cross-shard rung
    # ------------------------------------------------------------------ #

    def _execute_cross(
        self,
        ags: AGS,
        process_id: int,
        timeout: float | None,
        shard_set: frozenset[int] | None,
    ) -> AGSResult:
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = _CROSS_RETRY_INITIAL
        while True:
            with self._cross_lock:
                outcome = self._cross_attempt(ags, process_id, shard_set)
            if outcome is not None:
                return outcome
            # every guard is blocking and none could fire: the state was
            # scattered back unchanged; poll again after a short backoff
            if deadline is not None and time.monotonic() >= deadline:
                # nothing is parked anywhere — the rung restored all
                # tuples — so this timeout is as clean as an ordered cancel
                raise TimeoutError_(
                    f"guard not satisfied within {timeout}s", outcome="cancelled"
                )
            time.sleep(delay)
            delay = min(delay * 2, _CROSS_RETRY_MAX)

    def _cross_selectors(
        self, ags: AGS, involved: list[int]
    ) -> tuple[dict[int, list[tuple[TSHandle, Any]]], dict[int, TSHandle]]:
        """Per-shard ExtractTuples selectors + the handles they mention.

        Three selector forms (see :class:`ExtractTuples`): ``(h, value)``
        withdraws one partition from its owning shard, ``(h, ANY_FIRST)``
        withdraws a space's whole slice from every involved shard (the
        wildcard-first-field case), ``(h, None)`` withdraws nothing but
        reports whether the space exists (deposit-only spaces — the
        scratch machine must not adopt a destroyed space).  A statement
        whose target space is only known at execution time degrades to a
        full sweep: every live space, every shard.
        """
        hints = ags.shard_hints()
        handles: dict[int, TSHandle] = {}
        if any(ts is None for ts, _first, _extracts in hints):
            with self._space_lock:
                swept = sorted(self._spaces)
                handles = {hid: self._spaces[hid] for hid in swept}
            per_shard = {
                k: [(handles[hid], ANY_FIRST) for hid in swept] for k in involved
            }
            return per_shard, handles
        per_shard = {k: [] for k in involved}
        probe_only: list[TSHandle] = []
        for ts, first, extracts in hints:
            assert ts is not None
            handles[ts.id] = ts
            if not extracts:
                probe_only.append(ts)
                continue
            if first == ANY_FIRST:
                for k in involved:
                    per_shard[k].append((ts, ANY_FIRST))
            else:
                per_shard[shard_of(ts.id, first, self.n_shards)].append((ts, first))
        probe_shard = involved[0]
        for ts in probe_only:
            if not any(sel[0].id == ts.id for sel in per_shard[probe_shard]):
                per_shard[probe_shard].append((ts, None))
        return per_shard, handles

    def _cross_attempt(
        self, ags: AGS, process_id: int, shard_set: frozenset[int] | None
    ) -> AGSResult | None:
        """One extract → scratch-execute → scatter round.  Holds _cross_lock.

        Returns ``None`` when the (blocking) statement could not fire —
        everything extracted has been scattered back unchanged.
        """
        involved = (
            sorted(shard_set) if shard_set is not None else list(range(self.n_shards))
        )
        selectors, handles = self._cross_selectors(ags, involved)
        # 1. the extract rung: ascending shard order, one ordered command
        #    per involved shard with a non-empty selector list
        extracted: list[tuple[int, int, int, tuple]] = []  # (space, seqno, shard, fields)
        exists: set[int] = set()
        for k in involved:
            sels = selectors[k]
            if not sels:
                continue
            group = self.groups[k]
            reply = group.call(
                ExtractTuples(group.next_request_id(), CLIENT_ORIGIN, sels)
            )
            exists.update(reply["spaces"])
            extracted.extend(
                (sid, seqno, k, fields) for sid, seqno, fields in reply["extracted"]
            )
        # 2. scratch execution: adopt the involved spaces that exist,
        #    replay withdrawn tuples oldest-first, apply the AGS
        registry = SpaceRegistry(create_main=False)
        for hid in sorted(exists):
            if hid in handles:
                registry.adopt(handles[hid])
        scratch = TSStateMachine(registry, failure_spaces=[])
        extracted.sort(key=lambda e: (e[0], e[1], e[2]))
        from repro.core.tuples import LindaTuple

        for sid, _seqno, _shard, fields in extracted:
            registry.store(handles[sid]).add(LindaTuple(fields))
        try:
            completions = scratch.apply(
                ExecuteAGS(1, CLIENT_ORIGIN, process_id, ags)
            )
        except Exception:
            # an unexpected (non-deterministic-path) failure: restore the
            # withdrawn tuples verbatim before surfacing it, so nothing
            # is lost even on a bug in scratch execution
            self._scatter(
                [(handles[sid], fields) for sid, _s, _k, fields in extracted]
            )
            raise
        if not completions:
            # parked: a blocking statement whose guards cannot fire.
            # Scatter the withdrawn tuples back unchanged and let the
            # caller retry — the scratch machine is thrown away.
            self._scatter(
                [(handles[sid], fields) for sid, _s, _k, fields in extracted]
            )
            return None
        # 3. scatter everything surviving in the scratch spaces (leftover
        #    slices plus tuples the body produced) back to their owners
        deposits: list[tuple[TSHandle, tuple]] = []
        for handle, store in registry:
            for tup in store.to_list():
                deposits.append((handle, tup.fields))
        self._scatter(deposits)
        return completions[0].result

    def _scatter(self, deposits: list[tuple[TSHandle, tuple]]) -> None:
        """Ship *deposits* to their owning shards, ascending shard order.

        ``post`` (not ``call``): per-shard FIFO ordering already
        guarantees any later command on that shard observes the deposit,
        and the coordinator lock is held, so a subsequent rung cannot
        extract ahead of these on any shard.
        """
        by_shard: dict[int, list[tuple[TSHandle, tuple]]] = {}
        for handle, fields in deposits:
            k = shard_of(handle.id, fields[0], self.n_shards)
            by_shard.setdefault(k, []).append((handle, fields))
        for k in sorted(by_shard):
            group = self.groups[k]
            group.post(
                DepositTuples(group.next_request_id(), CLIENT_ORIGIN, by_shard[k])
            )

    # ------------------------------------------------------------------ #
    # space lifecycle (fanned out, serialized, identical ids everywhere)
    # ------------------------------------------------------------------ #

    def create_space(
        self,
        name: str,
        resilience: Resilience = Resilience.STABLE,
        scope: Scope = Scope.SHARED,
        owner: int | None = None,
    ) -> TSHandle:
        with self._space_lock:
            results = []
            for group in self.groups:
                results.append(
                    group.call(
                        CreateSpace(
                            group.next_request_id(), CLIENT_ORIGIN,
                            name, resilience, scope, owner,
                        )
                    )
                )
            first = results[0]
            if isinstance(first, Exception):
                raise first
            self._spaces[first.id] = first
            return first

    def destroy_space(self, handle: TSHandle) -> None:
        with self._space_lock:
            results = []
            for group in self.groups:
                results.append(
                    group.call(
                        DestroySpace(group.next_request_id(), CLIENT_ORIGIN, handle)
                    )
                )
            first = results[0]
            if isinstance(first, Exception):
                raise first
            self._spaces.pop(handle.id, None)

    # ------------------------------------------------------------------ #
    # membership (fanned out: every shard converts the same failure)
    # ------------------------------------------------------------------ #

    def crash_replica(self, replica_id: int, *, notify: bool = True) -> None:
        """Halt replica *replica_id* in every shard group.

        Each shard sequences its own ``HostFailed`` carrying its
        ``shard_info``, so the failure tuple lands exactly once per space
        globally while every shard still drops the dead origin's parked
        statements at an ordered point.
        """
        for group in self.groups:
            group.crash_replica(replica_id, notify=notify)

    def recover_replica(self, replica_id: int, *, timeout: float = 30.0) -> None:
        for group in self.groups:
            group.recover_replica(replica_id, timeout=timeout)

    def inject_failure(self, host_id: int) -> None:
        for group in self.groups:
            group.inject_failure(host_id)

    @property
    def alive(self) -> list[bool]:
        """Replica liveness across shards (live = live in every shard)."""
        return [
            all(g.alive[i] for g in self.groups) for i in range(self.n_replicas)
        ]

    # ------------------------------------------------------------------ #
    # durability (fanned out: every shard compacts/reports its journal)
    # ------------------------------------------------------------------ #

    def compact_journal(self, *, timeout: float = 30.0) -> list[int | None]:
        """Compact every shard's journal; per-shard covered slots."""
        return [g.compact_journal(timeout=timeout) for g in self.groups]

    def journal_status(self) -> list[dict[str, Any]]:
        """Per-shard journal status (empty when not durable)."""
        statuses = []
        for g in self.groups:
            st = g.journal_status()
            if st is not None:
                st["shard"] = g.name or "group"
                statuses.append(st)
        return statuses

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def query(
        self,
        replica_id: int,
        what: str,
        arg: Any = None,
        timeout: float = 30.0,
        *,
        shard: int = 0,
    ) -> Any:
        """In-band query against one shard's replica (default shard 0)."""
        return self.groups[shard].query(replica_id, what, arg, timeout=timeout)

    def quiesce(self, timeout: float = 30.0) -> None:
        for group in self.groups:
            group.quiesce(timeout=timeout)

    def fingerprints(self) -> list[int]:
        """One combined fingerprint per replica index live in every shard.

        A replica's combined print hashes the tuple of its per-shard
        state-machine fingerprints, so two replica indices agree exactly
        when they agree shard-by-shard — the convergence assertion the
        contract tests make is preserved verbatim.
        """
        if self.n_shards == 1:
            return self.groups[0].fingerprints()
        prints: list[int] = []
        for i in range(self.n_replicas):
            if not all(g.alive[i] for g in self.groups):
                continue
            parts: list[int] = []
            dead_race = False
            for g in self.groups:
                try:
                    parts.append(g.query(i, "fingerprint"))
                except TimeoutError_:
                    if g.alive[i]:
                        raise
                    dead_race = True
                    break
            if not dead_race:
                prints.append(stable_hash(tuple(parts)))
        return prints

    def converged(self) -> bool:
        return len(set(self.fingerprints())) <= 1

    def space_size(self, handle: TSHandle) -> int:
        return sum(group.space_size(handle) for group in self.groups)

    def metrics_snapshot(self) -> dict[str, Any]:
        """Merged instruments, plus per-shard sub-snapshots when sharded."""
        if self.n_shards == 1:
            return self.groups[0].metrics_snapshot()
        # each group's snapshot refreshes its own backpressure gauges
        # before the merged view is assembled
        per_shard = {g.name: g.metrics_snapshot() for g in self.groups}
        snap = merged([g.metrics for g in self.groups]).snapshot()
        snap["shards"] = per_shard
        return snap

    # ------------------------------------------------------------------ #
    # continuous profiling
    # ------------------------------------------------------------------ #

    def start_profiling(self, hz: float = DEFAULT_HZ) -> None:
        """Sample every shard's threads (and replica processes) at *hz*.

        One process-wide local sampler covers all shards' in-process
        threads — their roles are already shard-qualified
        ("shard0/sequencer", …) — while each shard group independently
        drives its replica-process samplers, so a shard losing a replica
        mid-profile affects only its own remote stacks.
        """
        if self._profiler is None:
            self._profiler = SamplingProfiler(hz=hz).start()
        for group in self.groups:
            group.start_profiling(hz, local_sampler=False)

    def stop_profiling(self) -> dict[str, int]:
        """Stop sampling; return folded stacks merged across all shards."""
        folded: dict[str, int] = {}
        prof = self._profiler
        self._profiler = None
        if prof is not None:
            folded = prof.stop()
        for group in self.groups:
            folded = merge_folded(folded, group.stop_profiling())
        return folded

    @property
    def metrics(self) -> MetricsRegistry:
        """The runtime-facing registry: shard 0's when single, merged view
        is available via :meth:`metrics_snapshot`."""
        return self.groups[0].metrics

    def introspection_snapshot(self, backend: str = "ShardedGroup") -> dict[str, Any]:
        """One live-state image across shards (shape of ``empty_snapshot``).

        Sharded deployments add two things to the uniform shape: every
        replica row carries a ``shard`` name, and a top-level ``shards``
        list reports per-shard occupancy (live replicas, applied head,
        pending depth, tuples held) plus the occupancy ``skew`` —
        max-shard tuples over mean-shard tuples, 1.0 meaning the
        partitioner is spreading content evenly.
        """
        if self.n_shards == 1:
            return self.groups[0].introspection_snapshot(backend)
        from repro.obs.inspect import empty_snapshot

        out = empty_snapshot(backend)
        sm_out = out["sm"]
        shard_rows: list[dict[str, Any]] = []
        spaces_by_id: dict[int, dict[str, Any]] = {}
        for group in self.groups:
            snap = group.introspection_snapshot(backend)
            for row in snap["replicas"]:
                row = dict(row)
                row["shard"] = group.name
                out["replicas"].append(row)
            sm = snap.get("sm", {})
            sm_out["applied"] += sm.get("applied", 0)
            sm_out["waiters"].extend(sm.get("waiters", []))
            for key, age in sm.get("last_out_age", {}).items():
                prev = sm_out["last_out_age"].get(key)
                if prev is None or age < prev:
                    sm_out["last_out_age"][key] = age
            tuples_here = 0
            for sp in sm.get("spaces", []):
                tuples_here += sp.get("tuples", 0)
                agg = spaces_by_id.get(sp["id"])
                if agg is None:
                    spaces_by_id[sp["id"]] = dict(sp)
                else:
                    for field in ("tuples", "bytes", "buckets"):
                        agg[field] = agg.get(field, 0) + sp.get(field, 0)
                    # the hottest single bucket anywhere, not a sum — the
                    # skew it feeds should read ~1.0 for balanced content
                    agg["max_bucket"] = max(
                        agg.get("max_bucket", 0), sp.get("max_bucket", 0)
                    )
            applied_counts = [
                r["applied"] for r in snap["replicas"] if r["applied"] is not None
            ]
            shard_rows.append(
                {
                    "shard": group.name,
                    "live": sum(1 for r in snap["replicas"] if r["alive"]),
                    "replicas": group.n_replicas,
                    "applied": max(applied_counts) if applied_counts else 0,
                    "pending": snap.get("pending", 0),
                    "tuples": tuples_here,
                    "waiters": len(sm.get("waiters", [])),
                }
            )
            out["pending"] += snap.get("pending", 0)
        for sid in sorted(spaces_by_id):
            agg = spaces_by_id[sid]
            mean_bucket = (
                agg["tuples"] / agg["buckets"] if agg.get("buckets") else 0.0
            )
            agg["skew"] = (
                agg.get("max_bucket", 0) / mean_bucket if mean_bucket else 0.0
            )
            sm_out["spaces"].append(agg)
        totals = [row["tuples"] for row in shard_rows]
        mean = sum(totals) / len(totals) if totals else 0.0
        for row in shard_rows:
            row["skew"] = (row["tuples"] / mean) if mean else 0.0
        out["shards"] = shard_rows
        return out

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        if self._profiler is not None:
            self._profiler.stop()
            self._profiler = None
        for group in self.groups:
            group.shutdown()
