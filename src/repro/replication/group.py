"""ReplicaGroup: the transport-agnostic replication core.

One object owns everything the paper's ordered-update pipeline needs
(Sec. 5), independent of how items reach the replicas:

- **sequencing** — acquiring the sequencer lock *is* the atomic
  multicast's total order.  With batching enabled (the default)
  submitters only append to a pending queue; a dedicated sequencer
  thread drains the whole queue under the lock and ships it as ONE
  ordered batch.  While the sequencer is marshalling and broadcasting a
  batch, clients keep piling onto the queue — so load makes batches
  bigger exactly when amortizing pickling and queue wakeups matters
  most.  In-band operations (queries, recovery) flush the pending queue
  themselves under the same lock, so "sequenced after everything
  submitted before me" still holds;
- **parking and completion matching** — each submission waits on an
  event; every replica reports completions and the waiter map pops
  exactly once, so duplicates are free and a crashed replica can never
  strand a client on a completion it alone knew about;
- **in-band queries** — fingerprints, space sizes and snapshots travel on
  the command FIFOs, so they observe exactly the state after every
  previously sequenced command (no separate quiescing protocol);
- **the read fast path** — a read-only :class:`ExecuteAGS` (every op
  ``rd``/``rdp``) cannot change replicated state, and identical replicas
  mean any single up-to-date replica can answer it.  :meth:`ReplicaGroup.
  call` routes such statements *around* the total order: one live replica
  receives an in-band read tagged with a **session floor** (the
  highest slot the group has sequenced at that instant) and parks it
  until its applied count reaches the floor, then evaluates the guard on
  local state — read-your-writes consistency with no sequencing, no
  broadcast and one guard evaluation instead of N.  The read lane gets
  the same amortization as the write lane: a dedicated flusher thread
  drains concurrently submitted reads and ships them per replica as one
  ``READS`` item, and replicas answer each served batch with one
  ``COMPS`` — so under read-heavy load the per-operation transport cost
  (pickle + queue wakeup, both ways) is shared.  A blocking read whose
  guard cannot fire locally, and any read stranded by a replica crash,
  falls back transparently to the ordered path (the fallback ladder: fast
  path → reroute on READMISS/crash → ordered park → ordered cancel);
- **crash/recovery bookkeeping** — the alive mask, the ordered
  ``HostFailed``/``HostRecovered`` notifications, and the snapshot-based
  state transfer for transports that support restart;
- **metrics** — submit→order, order→apply and end-to-end AGS latency
  histograms plus submission/batch counters, recorded in one place so
  every backend reports identical instruments;
- **tracing** — with a :class:`~repro.obs.tracing.FlightRecorder`
  attached, every submission is minted a per-AGS trace id that rides
  inside the command through the sequencer batch, the transport (incl.
  the pickled multiproc blob) and the replica apply loops; the group
  records ``submit_to_order`` / ``broadcast`` / ``e2e`` spans here and
  ingests the per-replica ``apply`` spans the workers emit, all under
  one trace.  With no recorder attached (the default) every emit site
  is a single ``is not None`` check and commands carry ``trace_id=None``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any

from repro._errors import TimeoutError_
from repro.core.ags import AGSResult
from repro.core.spaces import TSHandle
from repro.core.statemachine import (
    CancelRequest,
    Command,
    ExecuteAGS,
    HostFailed,
    HostRecovered,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import FlightRecorder
from repro.replication.transport import Transport

__all__ = ["ReplicaGroup"]

#: Origin-host id the group stamps on client commands.  Reserved: failure
#: injection uses non-negative *logical* host ids, and HostFailed drops
#: blocked statements whose origin matches — client statements must never.
CLIENT_ORIGIN = -1

#: How long a cancelled statement may take to report back before the whole
#: group is declared unresponsive.
_CANCEL_GRACE_S = 30.0

#: Sentinel answer deposited into a pending query's slot when its target
#: replica crashes — fail fast instead of stalling the full query timeout.
_REPLICA_CRASHED = object()


class _Waiter:
    """One parked client submission and its latency timestamps."""

    __slots__ = (
        "event", "slot", "t_submit", "t_ordered", "trace_id", "track", "fellback",
    )

    def __init__(self, t_submit: float):
        self.event = threading.Event()
        self.slot: list[Any] = []
        self.t_submit = t_submit
        self.t_ordered: float | None = None
        self.trace_id: int | None = None
        self.track = ""
        #: Read fast path only (allocated in call()): set once the read has
        #: been reshipped through the total order, so a concurrently
        #: timing-out client never cancels ahead of the reship.
        self.fellback: threading.Event | None = None


class ReplicaGroup:
    """Sequencing, parking, dedup, queries and metrics over a Transport."""

    def __init__(
        self,
        transport: Transport,
        *,
        batching: bool = True,
        read_fastpath: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: FlightRecorder | None = None,
    ):
        self.transport = transport
        self.n_replicas = transport.n_replicas
        self.batching = batching
        self.read_fastpath = read_fastpath
        self.alive = [True] * self.n_replicas
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self._req_ids = itertools.count(1)
        self._qids = itertools.count(1)
        self._seq_lock = threading.Lock()  # holding this IS the total order
        self._pending: deque[tuple[Command, _Waiter | None]] = deque()
        self._pending_lock = threading.Lock()
        self._state_lock = threading.Lock()  # waiters + queries + reads
        self._waiters: dict[int, _Waiter] = {}
        self._queries: dict[tuple[int, int], tuple[threading.Event, list]] = {}
        #: Outstanding fast-path reads: request_id -> (replica_id, command).
        #: Guarded by _state_lock; exactly one of {completion, miss, crash
        #: reroute, client timeout} pops each entry and owns its outcome.
        self._reads: dict[int, tuple[int, Command]] = {}
        #: Count of commands sequenced so far — the session floor for
        #: reads.  Incremented (under _pending_lock) *before* a batch is
        #: broadcast, so by the time any completion reaches a client the
        #: counter already covers the completed command's slot.
        self._sequenced = 0
        #: The read lane's pending queue: (replica, floor, cmd) triples
        #: drained by the read flusher into one READS item per replica —
        #: the same batch amortization the sequencer gives writes, minus
        #: the ordering.  deque append/popleft are atomic; no lock needed.
        self._read_pending: deque[tuple[int, int, ExecuteAGS]] = deque()
        self._read_kick = threading.Event()
        #: Contention detector for the read lane: a reader that gets this
        #: uncontended sends its read itself (lowest latency); one that
        #: finds it held leaves the read for the flusher to batch.
        self._read_send_lock = threading.Lock()
        self._h_submit = self.metrics.histogram("submit_to_order")
        self._h_apply = self.metrics.histogram("order_to_apply")
        self._h_e2e = self.metrics.histogram("ags_e2e")
        self._h_batch = self.metrics.histogram("batch_size", lo=1.0, n_buckets=12)
        self._h_read = self.metrics.histogram("read_latency")
        self._c_cmds = self.metrics.counter("commands_submitted")
        self._c_batches = self.metrics.counter("batches_shipped")
        self._c_read_fast = self.metrics.counter("read_fastpath")
        self._c_read_fallback = self.metrics.counter("read_fallback")
        self._stopped = False
        transport.start(self._on_worker_item)
        self._kick = threading.Event()
        self._seq_thread: threading.Thread | None = None
        self._read_thread: threading.Thread | None = None
        if batching:
            self._seq_thread = threading.Thread(
                target=self._sequencer_loop, name="sequencer", daemon=True
            )
            self._seq_thread.start()
            if read_fastpath:
                self._read_thread = threading.Thread(
                    target=self._read_flusher_loop, name="read-flusher",
                    daemon=True,
                )
                self._read_thread.start()

    # ------------------------------------------------------------------ #
    # sequencing (the bus)
    # ------------------------------------------------------------------ #

    def next_request_id(self) -> int:
        return next(self._req_ids)

    def call(self, cmd: Command, timeout: float | None = None) -> Any:
        """Sequence *cmd*, park until its completion, return the result.

        Read-only statements take the read fast path when enabled: they
        are answered by one live replica at a consistent session floor
        instead of being sequenced (see the module docstring), falling
        back to the ordered path when the guard cannot fire locally or
        the chosen replica crashes.

        On timeout an *ordered* statement is withdrawn *through the total
        order* (a :class:`CancelRequest`), then whichever outcome won the
        race — completion or cancellation — is taken, so a timed-out
        ``in`` can never consume a tuple it did not report.
        """
        w = _Waiter(time.monotonic())
        tracer = self.tracer
        if tracer is not None:
            cmd.trace_id = w.trace_id = tracer.next_trace_id()
            w.track = f"client:{threading.current_thread().name}"
        with self._state_lock:
            self._waiters[cmd.request_id] = w
        self._c_cmds.inc()
        if (
            self.read_fastpath
            and isinstance(cmd, ExecuteAGS)
            and cmd.ags.read_only
        ):
            w.fellback = threading.Event()
            if self._send_read(cmd):
                return self._await_read(cmd, w, timeout)
        self._ship(cmd, w)
        if w.event.wait(timeout):
            return w.slot[0]
        return self._finish_ordered_timeout(cmd, w, timeout)

    def _finish_ordered_timeout(
        self, cmd: Command, w: _Waiter, timeout: float | None
    ) -> Any:
        """The ordered cancel dance after a parked call's guard timeout."""
        self.post(CancelRequest(self.next_request_id(), CLIENT_ORIGIN, cmd.request_id))
        if not w.event.wait(_CANCEL_GRACE_S):
            with self._state_lock:
                self._waiters.pop(cmd.request_id, None)
            raise TimeoutError_("replica group unresponsive")
        result = w.slot[0]
        if isinstance(result, AGSResult) and result.error == "cancelled":
            raise TimeoutError_(f"guard not satisfied within {timeout}s")
        return result

    # ------------------------------------------------------------------ #
    # the read fast path
    # ------------------------------------------------------------------ #

    def _send_read(self, cmd: ExecuteAGS) -> bool:
        """Route a read-only statement to one live replica.

        The session floor is the highest slot the group has *sequenced*
        at this instant.  Any command whose completion a client has seen
        was sequenced before its completion was reported, so it sits at
        or below the floor — the answering replica parks the read until
        it has applied that much, giving read-your-writes (and
        read-anyone's-completed-writes) without entering the order.
        Commands still *pending* are deliberately not covered: they have
        completed for nobody yet, and waiting on them would re-couple
        reads to the sequencing of unrelated writers.

        Returns False when no replica could take the read (none live, or
        the chosen one crashed mid-send) — the caller ships it ordered.
        """
        live = self.live_replicas()
        if not live:
            return False
        # Sticky routing: a client thread's reads all land on the same
        # replica (its session floor is already applied there, and the
        # replica stays hot), while distinct clients hash across the live
        # set for balance.  Membership changes just re-hash.
        replica = live[threading.get_ident() % len(live)]
        with self._pending_lock:
            floor = self._sequenced
        with self._state_lock:
            self._reads[cmd.request_id] = (replica, cmd)
        if self._read_send_lock.acquire(blocking=False):
            # idle lane: send directly — one thread hop fewer, which is
            # most of a fast read's latency at low concurrency
            try:
                self.transport.send(replica, ("READS", [(floor, cmd)]))
            finally:
                self._read_send_lock.release()
        elif self._read_thread is not None:
            # another reader holds the lane: join the flusher's next
            # per-replica batch instead of queueing up a send per read
            self._read_pending.append((replica, floor, cmd))
            self._read_kick.set()
        else:
            self.transport.send(replica, ("READS", [(floor, cmd)]))
        if not self.alive[replica]:
            # Raced crash_replica: whoever pops the registration owns the
            # reroute.  If the crash handler already did, the ordered
            # fallback is in flight and the fast path "took" the read.
            with self._state_lock:
                if self._reads.pop(cmd.request_id, None) is not None:
                    return False
        self._c_read_fast.inc()
        return True

    def _await_read(self, cmd: ExecuteAGS, w: _Waiter, timeout: float | None) -> Any:
        """Wait out a fast-path read; degrade to the ordered ladder."""
        if w.event.wait(timeout):
            self._h_read.record(time.monotonic() - w.t_submit)
            return w.slot[0]
        with self._state_lock:
            owned = self._reads.pop(cmd.request_id, None)
            if owned is not None:
                self._waiters.pop(cmd.request_id, None)
        if owned is not None:
            # Still on the fast path: nothing is parked in the total order
            # and reads consume nothing, so no ordered cancel is needed.
            raise TimeoutError_(f"guard not satisfied within {timeout}s")
        if w.event.is_set():
            return w.slot[0]  # completion won the race with the deadline
        # The read fell back to the ordered path before the deadline and
        # is parked there — wait for the reship to actually be enqueued
        # (the fallback claim and its _ship are not atomic), then withdraw
        # it through the order as usual.
        if w.fellback is not None:
            w.fellback.wait(1.0)
        return self._finish_ordered_timeout(cmd, w, timeout)

    def _fallback_read(self, request_id: int) -> None:
        """Reship an outstanding fast-path read through the total order."""
        with self._state_lock:
            entry = self._reads.pop(request_id, None)
            w = self._waiters.get(request_id) if entry is not None else None
        if entry is not None and w is not None:
            self._c_read_fallback.inc()
            self._ship(entry[1], w)
            if w.fellback is not None:
                w.fellback.set()

    def _reroute_reads(self, replica_id: int) -> None:
        """Reship every read stranded on a crashed replica."""
        with self._state_lock:
            stranded = [
                rid
                for rid, (target, _cmd) in self._reads.items()
                if target == replica_id
            ]
        for rid in stranded:
            self._fallback_read(rid)

    def post(self, cmd: Command) -> None:
        """Sequence *cmd* without waiting for any completion."""
        tracer = self.tracer
        if tracer is not None:
            cmd.trace_id = tracer.next_trace_id()
        self._ship(cmd, None)

    def _ship(self, cmd: Command, w: _Waiter | None) -> None:
        if not self.batching:
            with self._seq_lock:
                with self._pending_lock:
                    self._sequenced += 1
                self._broadcast_batch([(cmd, w)])
            return
        with self._pending_lock:
            self._pending.append((cmd, w))
        self._kick.set()

    def _flush_pending_locked(self) -> bool:
        """Ship everything pending as one batch.  Caller holds _seq_lock.

        Commands leave the pending queue only under the sequencer lock, so
        anything not yet broadcast is still visible here — which is what
        lets queries and recovery flush-then-send to stay in-band.
        """
        with self._pending_lock:
            if not self._pending:
                return False
            batch = list(self._pending)
            self._pending.clear()
            # counted as sequenced before the broadcast below: a read
            # floor taken after any of these commands completes must
            # already cover their slots
            self._sequenced += len(batch)
        self._broadcast_batch(batch)
        return True

    def _sequencer_loop(self) -> None:
        """Drain the pending queue into ordered batches until shutdown.

        A dedicated thread rather than drain-on-submit: while it is
        marshalling one batch, every concurrently submitting client simply
        appends — so the next batch is as large as the current one was
        slow, and per-command marshalling cost amortizes under load.
        """
        while True:
            self._kick.wait()
            self._kick.clear()
            while True:
                with self._seq_lock:
                    if not self._flush_pending_locked():
                        break
            if self._stopped:
                with self._seq_lock:
                    self._flush_pending_locked()
                return

    def _read_flusher_loop(self) -> None:
        """Drain the read lane into per-replica READS batches until shutdown.

        The write lane's amortization argument, replayed: while this
        thread is shipping one batch, concurrently submitting readers
        keep appending — so each transport send (and, on the pickling
        transport, each marshalling pass) carries as many reads as the
        previous send was slow.  A read enqueued for a replica that
        crashed after registration still gets shipped here; the dead
        FIFO drops it, and the crash handler's reroute owns the outcome.
        """
        pending = self._read_pending
        while True:
            self._read_kick.wait()
            self._read_kick.clear()
            while pending:
                by_replica: dict[int, list[tuple[int, ExecuteAGS]]] = {}
                try:
                    while True:
                        replica, floor, cmd = pending.popleft()
                        by_replica.setdefault(replica, []).append((floor, cmd))
                except IndexError:
                    pass
                # hold the lane lock while shipping so concurrent readers
                # keep feeding the next batch instead of racing us
                with self._read_send_lock:
                    for replica, reads in by_replica.items():
                        self.transport.send(replica, ("READS", reads))
            if self._stopped:
                return

    def _broadcast_batch(self, batch: list[tuple[Command, _Waiter | None]]) -> None:
        now = time.monotonic()
        cmds = []
        for cmd, w in batch:
            cmds.append(cmd)
            if w is not None:
                w.t_ordered = now
                self._h_submit.record(now - w.t_submit)
        self._c_batches.inc()
        self._h_batch.record(len(batch))
        info = self.transport.broadcast(("BATCH", cmds), self.alive)
        tracer = self.tracer
        if tracer is not None:
            self._trace_batch(tracer, batch, now, info)

    def _trace_batch(
        self,
        tracer: FlightRecorder,
        batch: list[tuple[Command, _Waiter | None]],
        t_ordered: float,
        info: Any,
    ) -> None:
        """Record the batch's broadcast span and each AGS's submit span."""
        traced: list[int] = []
        for cmd, w in batch:
            if cmd.trace_id is None:
                continue
            traced.append(cmd.trace_id)
            if w is not None:
                tracer.record_span(
                    w.t_submit,
                    w.track,
                    "client",
                    "submit_to_order",
                    dur=t_ordered - w.t_submit,
                    trace_id=cmd.trace_id,
                    args={"request_id": cmd.request_id},
                )
        args: dict[str, Any] = {"batch": len(batch), "trace_ids": traced}
        if isinstance(info, int):
            args["bytes"] = info
        tracer.record_span(
            t_ordered,
            "sequencer",
            "group",
            "broadcast",
            dur=time.monotonic() - t_ordered,
            args=args,
        )

    # ------------------------------------------------------------------ #
    # worker emissions (completions + query answers)
    # ------------------------------------------------------------------ #

    def _complete(self, replica_id: int, rid: int, result: Any) -> None:
        """Deliver one completion: pop-as-claim, record latencies, wake."""
        with self._state_lock:
            w = self._waiters.pop(rid, None)
            self._reads.pop(rid, None)
        if w is not None:
            now = time.monotonic()
            if w.t_ordered is not None:
                self._h_apply.record(now - w.t_ordered)
            self._h_e2e.record(now - w.t_submit)
            tracer = self.tracer
            if tracer is not None and w.trace_id is not None:
                tracer.record_span(
                    w.t_submit,
                    w.track,
                    "client",
                    "e2e",
                    dur=now - w.t_submit,
                    trace_id=w.trace_id,
                    args={"request_id": rid, "replica": replica_id},
                )
            w.slot.append(result)
            w.event.set()

    def _on_worker_item(self, replica_id: int, item: tuple) -> None:
        kind = item[0]
        if kind == "COMP":
            self._complete(replica_id, item[1], item[2])
        elif kind == "COMPS":
            # one READS batch's worth of fast-path answers
            for rid, result in item[1]:
                self._complete(replica_id, rid, result)
        elif kind == "READMISS":
            # a blocking read's guard cannot fire on the replica's local
            # state: reroute it through the total order, where it parks
            self._fallback_read(item[1])
        elif kind == "SPANS":
            tracer = self.tracer
            if tracer is not None:
                track = f"replica-{replica_id}"
                for trace_id, rid, slot, ts, dur in item[1]:
                    tracer.record_span(
                        ts,
                        track,
                        "replica",
                        "apply",
                        dur=dur,
                        trace_id=trace_id,
                        args={"slot": slot, "request_id": rid},
                    )
        elif kind == "QUERY":
            _k, qid, answering_replica, answer = item
            with self._state_lock:
                waiter = self._queries.pop((qid, answering_replica), None)
            if waiter is not None:
                event, slot = waiter
                slot.append(answer)
                event.set()

    # ------------------------------------------------------------------ #
    # in-band queries
    # ------------------------------------------------------------------ #

    def _register_query(
        self, replica_id: int
    ) -> tuple[int, threading.Event, list]:
        qid = next(self._qids)
        event = threading.Event()
        slot: list = []
        with self._state_lock:
            self._queries[(qid, replica_id)] = (event, slot)
        return qid, event, slot

    def _fail_queries(self, replica_id: int) -> None:
        """Answer every query pending on a crashed replica with a sentinel."""
        with self._state_lock:
            keys = [k for k in self._queries if k[1] == replica_id]
            victims = [self._queries.pop(k) for k in keys]
        for event, slot in victims:
            slot.append(_REPLICA_CRASHED)
            event.set()

    def query(
        self, replica_id: int, what: str, arg: Any = None, timeout: float = 30.0
    ) -> Any:
        """In-band query: answered after all previously sequenced commands.

        Fails fast on a replica that is already crashed — or that crashes
        while the query is pending (crash_replica deposits a sentinel
        answer) — instead of stalling out the full timeout; the
        registration never outlives the call, whichever way it ends.
        """
        if not self.alive[replica_id]:
            raise TimeoutError_(f"replica {replica_id} has crashed")
        qid, event, slot = self._register_query(replica_id)
        with self._seq_lock:  # serialize against broadcasts: stay in-band
            self._flush_pending_locked()
            self.transport.send(replica_id, ("QUERY", qid, what, arg))
        if not self.alive[replica_id] and not event.is_set():
            # raced crash_replica past its pending-query sweep
            with self._state_lock:
                self._queries.pop((qid, replica_id), None)
            raise TimeoutError_(f"replica {replica_id} has crashed")
        if not event.wait(timeout):
            with self._state_lock:
                self._queries.pop((qid, replica_id), None)
            raise TimeoutError_(f"replica {replica_id} did not answer query")
        if slot[0] is _REPLICA_CRASHED:
            raise TimeoutError_(f"replica {replica_id} crashed during query")
        return slot[0]

    # ------------------------------------------------------------------ #
    # membership: crash, failure notification, recovery
    # ------------------------------------------------------------------ #

    def live_replicas(self) -> list[int]:
        return [i for i in range(self.n_replicas) if self.alive[i]]

    def crash_replica(self, replica_id: int, *, notify: bool = True) -> None:
        """Halt one replica mid-stream; optionally deposit its failure tuple."""
        with self._seq_lock:
            # the sequencer reads the alive mask while broadcasting; flip
            # it under the same lock so a batch never ships against a
            # half-updated live set
            if not self.alive[replica_id]:
                return
            self.alive[replica_id] = False
        self.transport.stop_replica(replica_id)
        # anything parked on the dead replica can never be answered by it:
        # fail its pending queries fast, reroute its outstanding reads
        self._fail_queries(replica_id)
        self._reroute_reads(replica_id)
        if self.tracer is not None:
            self.tracer.record_span(
                time.monotonic(), f"replica-{replica_id}", "membership", "crash"
            )
        if notify and any(self.alive):
            self.post(HostFailed(self.next_request_id(), CLIENT_ORIGIN, replica_id))

    def inject_failure(self, host_id: int) -> None:
        """Deposit a failure tuple for a *logical* host (worker) id."""
        self.post(HostFailed(self.next_request_id(), CLIENT_ORIGIN, host_id))

    def recover_replica(self, replica_id: int, *, timeout: float = 30.0) -> None:
        """Restart a crashed replica and transfer state into it.

        The snapshot is captured from a live donor *at a quiet point in
        the total order* — the sequencer lock is held, so no command can
        slip between capture and readmission.  A ``HostRecovered`` command
        then deposits the recovery tuple, as on the simulated cluster.
        """
        if self.alive[replica_id]:
            return
        if not self.transport.supports_recovery:
            raise TimeoutError_(
                f"{type(self.transport).__name__} does not support replica restart"
            )
        with self._seq_lock:  # freeze the order: nothing sequenced past us
            self._flush_pending_locked()
            donor = next(iter(self.live_replicas()), None)
            if donor is None:
                raise TimeoutError_("no live replica to transfer state from")
            qid, event, slot = self._register_query(donor)
            self.transport.send(donor, ("SNAPSHOT", qid))
            if not event.wait(timeout):
                with self._state_lock:
                    self._queries.pop((qid, donor), None)
                raise TimeoutError_("donor replica did not produce a snapshot")
            snapshot, applied = slot[0]
            self.transport.restart_replica(replica_id)
            qid2, event2, slot2 = self._register_query(replica_id)
            self.transport.send(
                replica_id, ("INSTALL", qid2, snapshot, applied)
            )
            self.alive[replica_id] = True
        if not event2.wait(timeout):
            with self._state_lock:
                self._queries.pop((qid2, replica_id), None)
            raise TimeoutError_("recovered replica did not confirm install")
        if self.tracer is not None:
            self.tracer.record_span(
                time.monotonic(),
                f"replica-{replica_id}",
                "membership",
                "recover",
                args={"applied": applied},
            )
        self.post(HostRecovered(self.next_request_id(), CLIENT_ORIGIN, replica_id))

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def quiesce(self, timeout: float = 30.0) -> None:
        """Return once every live replica has applied every sequenced command.

        Implemented as an in-band no-op query per replica: the answer can
        only arrive after everything ahead of it on the FIFO has applied.
        A replica crashing mid-iteration is skipped, not an error.
        """
        for i in self.live_replicas():
            try:
                self.query(i, "applied", timeout=timeout)
            except TimeoutError_:
                if self.alive[i]:
                    raise  # a genuine stall, not a crash race

    def fingerprints(self) -> list[int]:
        """Stable-state fingerprints of all live replicas.

        Tolerates a replica crashing mid-iteration: its fingerprint is
        simply omitted (it is no longer part of the live set).
        """
        prints: list[int] = []
        for i in self.live_replicas():
            try:
                prints.append(self.query(i, "fingerprint"))
            except TimeoutError_:
                if self.alive[i]:
                    raise
        return prints

    def converged(self) -> bool:
        return len(set(self.fingerprints())) <= 1

    def space_size(self, handle: TSHandle) -> int:
        for i in self.live_replicas():
            try:
                return self.query(i, "space_size", handle)
            except TimeoutError_:
                if self.alive[i]:
                    raise  # crashed mid-query: ask the next live replica
        raise TimeoutError_("all replicas have crashed")

    def metrics_snapshot(self) -> dict[str, Any]:
        return self.metrics.snapshot()

    def introspection_snapshot(self, backend: str = "ReplicaGroup") -> dict[str, Any]:
        """Merged live-state image: one replica's SM view + group health.

        The state-machine image (spaces, waiters, last-out ages) comes
        from the lowest-numbered live replica via the in-band query path,
        so it reflects everything sequenced before the call.  Per-replica
        applied counts give queue lag; the pending deque gives sequencer
        depth.
        """
        from repro.obs.inspect import empty_snapshot

        snap = empty_snapshot(backend)
        applied: dict[int, int | None] = {}
        for i in range(self.n_replicas):
            try:
                applied[i] = self.query(i, "applied") if self.alive[i] else None
            except TimeoutError_:
                applied[i] = None  # crashed mid-query
        live_counts = [a for a in applied.values() if a is not None]
        head = max(live_counts) if live_counts else 0
        snap["replicas"] = [
            {
                "id": i,
                "alive": self.alive[i],
                "applied": applied[i],
                "lag": head - applied[i] if applied[i] is not None else None,
            }
            for i in range(self.n_replicas)
        ]
        live = self.live_replicas()
        if live:
            try:
                snap["sm"] = self.query(live[0], "introspect")
            except TimeoutError_:
                if self.alive[live[0]]:
                    raise
        with self._pending_lock:
            snap["pending"] = len(self._pending)
        return snap

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._seq_thread is not None:
            self._kick.set()
            self._seq_thread.join(timeout=5.0)
        if self._read_thread is not None:
            self._read_kick.set()
            self._read_thread.join(timeout=5.0)
        self.transport.shutdown(self.alive)
