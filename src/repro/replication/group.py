"""ReplicaGroup: the transport-agnostic replication core.

One object owns everything the paper's ordered-update pipeline needs
(Sec. 5), independent of how items reach the replicas:

- **sequencing** — acquiring the sequencer lock *is* the atomic
  multicast's total order.  With batching enabled (the default)
  submitters only append to a pending queue; a dedicated sequencer
  thread drains the whole queue under the lock and ships it as ONE
  ordered batch.  While the sequencer is marshalling and broadcasting a
  batch, clients keep piling onto the queue — so load makes batches
  bigger exactly when amortizing pickling and queue wakeups matters
  most.  In-band operations (queries, recovery) flush the pending queue
  themselves under the same lock, so "sequenced after everything
  submitted before me" still holds;
- **parking and completion matching** — each submission waits on an
  event; every replica reports completions and the waiter map pops
  exactly once, so duplicates are free and a crashed replica can never
  strand a client on a completion it alone knew about;
- **in-band queries** — fingerprints, space sizes and snapshots travel on
  the command FIFOs, so they observe exactly the state after every
  previously sequenced command (no separate quiescing protocol);
- **crash/recovery bookkeeping** — the alive mask, the ordered
  ``HostFailed``/``HostRecovered`` notifications, and the snapshot-based
  state transfer for transports that support restart;
- **metrics** — submit→order, order→apply and end-to-end AGS latency
  histograms plus submission/batch counters, recorded in one place so
  every backend reports identical instruments;
- **tracing** — with a :class:`~repro.obs.tracing.FlightRecorder`
  attached, every submission is minted a per-AGS trace id that rides
  inside the command through the sequencer batch, the transport (incl.
  the pickled multiproc blob) and the replica apply loops; the group
  records ``submit_to_order`` / ``broadcast`` / ``e2e`` spans here and
  ingests the per-replica ``apply`` spans the workers emit, all under
  one trace.  With no recorder attached (the default) every emit site
  is a single ``is not None`` check and commands carry ``trace_id=None``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any

from repro._errors import TimeoutError_
from repro.core.ags import AGSResult
from repro.core.spaces import TSHandle
from repro.core.statemachine import (
    CancelRequest,
    Command,
    HostFailed,
    HostRecovered,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import FlightRecorder
from repro.replication.transport import Transport

__all__ = ["ReplicaGroup"]

#: Origin-host id the group stamps on client commands.  Reserved: failure
#: injection uses non-negative *logical* host ids, and HostFailed drops
#: blocked statements whose origin matches — client statements must never.
CLIENT_ORIGIN = -1

#: How long a cancelled statement may take to report back before the whole
#: group is declared unresponsive.
_CANCEL_GRACE_S = 30.0


class _Waiter:
    """One parked client submission and its latency timestamps."""

    __slots__ = ("event", "slot", "t_submit", "t_ordered", "trace_id", "track")

    def __init__(self, t_submit: float):
        self.event = threading.Event()
        self.slot: list[Any] = []
        self.t_submit = t_submit
        self.t_ordered: float | None = None
        self.trace_id: int | None = None
        self.track = ""


class ReplicaGroup:
    """Sequencing, parking, dedup, queries and metrics over a Transport."""

    def __init__(
        self,
        transport: Transport,
        *,
        batching: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: FlightRecorder | None = None,
    ):
        self.transport = transport
        self.n_replicas = transport.n_replicas
        self.batching = batching
        self.alive = [True] * self.n_replicas
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self._req_ids = itertools.count(1)
        self._qids = itertools.count(1)
        self._seq_lock = threading.Lock()  # holding this IS the total order
        self._pending: deque[tuple[Command, _Waiter | None]] = deque()
        self._pending_lock = threading.Lock()
        self._state_lock = threading.Lock()  # waiters + queries
        self._waiters: dict[int, _Waiter] = {}
        self._queries: dict[tuple[int, int], tuple[threading.Event, list]] = {}
        self._h_submit = self.metrics.histogram("submit_to_order")
        self._h_apply = self.metrics.histogram("order_to_apply")
        self._h_e2e = self.metrics.histogram("ags_e2e")
        self._h_batch = self.metrics.histogram("batch_size", lo=1.0, n_buckets=12)
        self._c_cmds = self.metrics.counter("commands_submitted")
        self._c_batches = self.metrics.counter("batches_shipped")
        self._stopped = False
        transport.start(self._on_worker_item)
        self._kick = threading.Event()
        self._seq_thread: threading.Thread | None = None
        if batching:
            self._seq_thread = threading.Thread(
                target=self._sequencer_loop, name="sequencer", daemon=True
            )
            self._seq_thread.start()

    # ------------------------------------------------------------------ #
    # sequencing (the bus)
    # ------------------------------------------------------------------ #

    def next_request_id(self) -> int:
        return next(self._req_ids)

    def call(self, cmd: Command, timeout: float | None = None) -> Any:
        """Sequence *cmd*, park until its completion, return the result.

        On timeout the statement is withdrawn *through the total order*
        (a :class:`CancelRequest`), then whichever outcome won the race —
        completion or cancellation — is taken, so a timed-out ``in`` can
        never consume a tuple it did not report.
        """
        w = _Waiter(time.monotonic())
        tracer = self.tracer
        if tracer is not None:
            cmd.trace_id = w.trace_id = tracer.next_trace_id()
            w.track = f"client:{threading.current_thread().name}"
        with self._state_lock:
            self._waiters[cmd.request_id] = w
        self._c_cmds.inc()
        self._ship(cmd, w)
        if w.event.wait(timeout):
            return w.slot[0]
        self.post(CancelRequest(self.next_request_id(), CLIENT_ORIGIN, cmd.request_id))
        if not w.event.wait(_CANCEL_GRACE_S):
            raise TimeoutError_("replica group unresponsive")
        result = w.slot[0]
        if isinstance(result, AGSResult) and result.error == "cancelled":
            raise TimeoutError_(f"guard not satisfied within {timeout}s")
        return result

    def post(self, cmd: Command) -> None:
        """Sequence *cmd* without waiting for any completion."""
        tracer = self.tracer
        if tracer is not None:
            cmd.trace_id = tracer.next_trace_id()
        self._ship(cmd, None)

    def _ship(self, cmd: Command, w: _Waiter | None) -> None:
        if not self.batching:
            with self._seq_lock:
                self._broadcast_batch([(cmd, w)])
            return
        with self._pending_lock:
            self._pending.append((cmd, w))
        self._kick.set()

    def _flush_pending_locked(self) -> bool:
        """Ship everything pending as one batch.  Caller holds _seq_lock.

        Commands leave the pending queue only under the sequencer lock, so
        anything not yet broadcast is still visible here — which is what
        lets queries and recovery flush-then-send to stay in-band.
        """
        with self._pending_lock:
            if not self._pending:
                return False
            batch = list(self._pending)
            self._pending.clear()
        self._broadcast_batch(batch)
        return True

    def _sequencer_loop(self) -> None:
        """Drain the pending queue into ordered batches until shutdown.

        A dedicated thread rather than drain-on-submit: while it is
        marshalling one batch, every concurrently submitting client simply
        appends — so the next batch is as large as the current one was
        slow, and per-command marshalling cost amortizes under load.
        """
        while True:
            self._kick.wait()
            self._kick.clear()
            while True:
                with self._seq_lock:
                    if not self._flush_pending_locked():
                        break
            if self._stopped:
                with self._seq_lock:
                    self._flush_pending_locked()
                return

    def _broadcast_batch(self, batch: list[tuple[Command, _Waiter | None]]) -> None:
        now = time.monotonic()
        cmds = []
        for cmd, w in batch:
            cmds.append(cmd)
            if w is not None:
                w.t_ordered = now
                self._h_submit.record(now - w.t_submit)
        self._c_batches.inc()
        self._h_batch.record(len(batch))
        info = self.transport.broadcast(("BATCH", cmds), self.alive)
        tracer = self.tracer
        if tracer is not None:
            self._trace_batch(tracer, batch, now, info)

    def _trace_batch(
        self,
        tracer: FlightRecorder,
        batch: list[tuple[Command, _Waiter | None]],
        t_ordered: float,
        info: Any,
    ) -> None:
        """Record the batch's broadcast span and each AGS's submit span."""
        traced: list[int] = []
        for cmd, w in batch:
            if cmd.trace_id is None:
                continue
            traced.append(cmd.trace_id)
            if w is not None:
                tracer.record_span(
                    w.t_submit,
                    w.track,
                    "client",
                    "submit_to_order",
                    dur=t_ordered - w.t_submit,
                    trace_id=cmd.trace_id,
                    args={"request_id": cmd.request_id},
                )
        args: dict[str, Any] = {"batch": len(batch), "trace_ids": traced}
        if isinstance(info, int):
            args["bytes"] = info
        tracer.record_span(
            t_ordered,
            "sequencer",
            "group",
            "broadcast",
            dur=time.monotonic() - t_ordered,
            args=args,
        )

    # ------------------------------------------------------------------ #
    # worker emissions (completions + query answers)
    # ------------------------------------------------------------------ #

    def _on_worker_item(self, replica_id: int, item: tuple) -> None:
        kind = item[0]
        if kind == "COMP":
            _k, rid, result = item
            with self._state_lock:
                w = self._waiters.pop(rid, None)
            if w is not None:
                now = time.monotonic()
                if w.t_ordered is not None:
                    self._h_apply.record(now - w.t_ordered)
                self._h_e2e.record(now - w.t_submit)
                tracer = self.tracer
                if tracer is not None and w.trace_id is not None:
                    tracer.record_span(
                        w.t_submit,
                        w.track,
                        "client",
                        "e2e",
                        dur=now - w.t_submit,
                        trace_id=w.trace_id,
                        args={"request_id": rid, "replica": replica_id},
                    )
                w.slot.append(result)
                w.event.set()
        elif kind == "SPANS":
            tracer = self.tracer
            if tracer is not None:
                track = f"replica-{replica_id}"
                for trace_id, rid, slot, ts, dur in item[1]:
                    tracer.record_span(
                        ts,
                        track,
                        "replica",
                        "apply",
                        dur=dur,
                        trace_id=trace_id,
                        args={"slot": slot, "request_id": rid},
                    )
        elif kind == "QUERY":
            _k, qid, answering_replica, answer = item
            with self._state_lock:
                waiter = self._queries.pop((qid, answering_replica), None)
            if waiter is not None:
                event, slot = waiter
                slot.append(answer)
                event.set()

    # ------------------------------------------------------------------ #
    # in-band queries
    # ------------------------------------------------------------------ #

    def _register_query(
        self, replica_id: int
    ) -> tuple[int, threading.Event, list]:
        qid = next(self._qids)
        event = threading.Event()
        slot: list = []
        with self._state_lock:
            self._queries[(qid, replica_id)] = (event, slot)
        return qid, event, slot

    def query(
        self, replica_id: int, what: str, arg: Any = None, timeout: float = 30.0
    ) -> Any:
        """In-band query: answered after all previously sequenced commands."""
        qid, event, slot = self._register_query(replica_id)
        with self._seq_lock:  # serialize against broadcasts: stay in-band
            self._flush_pending_locked()
            self.transport.send(replica_id, ("QUERY", qid, what, arg))
        if not event.wait(timeout):
            raise TimeoutError_(f"replica {replica_id} did not answer query")
        return slot[0]

    # ------------------------------------------------------------------ #
    # membership: crash, failure notification, recovery
    # ------------------------------------------------------------------ #

    def live_replicas(self) -> list[int]:
        return [i for i in range(self.n_replicas) if self.alive[i]]

    def crash_replica(self, replica_id: int, *, notify: bool = True) -> None:
        """Halt one replica mid-stream; optionally deposit its failure tuple."""
        if not self.alive[replica_id]:
            return
        self.alive[replica_id] = False
        self.transport.stop_replica(replica_id)
        if self.tracer is not None:
            self.tracer.record_span(
                time.monotonic(), f"replica-{replica_id}", "membership", "crash"
            )
        if notify and any(self.alive):
            self.post(HostFailed(self.next_request_id(), CLIENT_ORIGIN, replica_id))

    def inject_failure(self, host_id: int) -> None:
        """Deposit a failure tuple for a *logical* host (worker) id."""
        self.post(HostFailed(self.next_request_id(), CLIENT_ORIGIN, host_id))

    def recover_replica(self, replica_id: int, *, timeout: float = 30.0) -> None:
        """Restart a crashed replica and transfer state into it.

        The snapshot is captured from a live donor *at a quiet point in
        the total order* — the sequencer lock is held, so no command can
        slip between capture and readmission.  A ``HostRecovered`` command
        then deposits the recovery tuple, as on the simulated cluster.
        """
        if self.alive[replica_id]:
            return
        if not self.transport.supports_recovery:
            raise TimeoutError_(
                f"{type(self.transport).__name__} does not support replica restart"
            )
        with self._seq_lock:  # freeze the order: nothing sequenced past us
            self._flush_pending_locked()
            donor = next(iter(self.live_replicas()), None)
            if donor is None:
                raise TimeoutError_("no live replica to transfer state from")
            qid, event, slot = self._register_query(donor)
            self.transport.send(donor, ("SNAPSHOT", qid))
            if not event.wait(timeout):
                raise TimeoutError_("donor replica did not produce a snapshot")
            snapshot, applied = slot[0]
            self.transport.restart_replica(replica_id)
            qid2, event2, slot2 = self._register_query(replica_id)
            self.transport.send(
                replica_id, ("INSTALL", qid2, snapshot, applied)
            )
            self.alive[replica_id] = True
        if not event2.wait(timeout):
            raise TimeoutError_("recovered replica did not confirm install")
        if self.tracer is not None:
            self.tracer.record_span(
                time.monotonic(),
                f"replica-{replica_id}",
                "membership",
                "recover",
                args={"applied": applied},
            )
        self.post(HostRecovered(self.next_request_id(), CLIENT_ORIGIN, replica_id))

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def quiesce(self, timeout: float = 30.0) -> None:
        """Return once every live replica has applied every sequenced command.

        Implemented as an in-band no-op query per replica: the answer can
        only arrive after everything ahead of it on the FIFO has applied.
        """
        for i in self.live_replicas():
            self.query(i, "applied", timeout=timeout)

    def fingerprints(self) -> list[int]:
        """Stable-state fingerprints of all live replicas."""
        return [self.query(i, "fingerprint") for i in self.live_replicas()]

    def converged(self) -> bool:
        return len(set(self.fingerprints())) <= 1

    def space_size(self, handle: TSHandle) -> int:
        for i in self.live_replicas():
            return self.query(i, "space_size", handle)
        raise TimeoutError_("all replicas have crashed")

    def metrics_snapshot(self) -> dict[str, Any]:
        return self.metrics.snapshot()

    def introspection_snapshot(self, backend: str = "ReplicaGroup") -> dict[str, Any]:
        """Merged live-state image: one replica's SM view + group health.

        The state-machine image (spaces, waiters, last-out ages) comes
        from the lowest-numbered live replica via the in-band query path,
        so it reflects everything sequenced before the call.  Per-replica
        applied counts give queue lag; the pending deque gives sequencer
        depth.
        """
        from repro.obs.inspect import empty_snapshot

        snap = empty_snapshot(backend)
        applied: dict[int, int | None] = {}
        for i in range(self.n_replicas):
            applied[i] = self.query(i, "applied") if self.alive[i] else None
        live_counts = [a for a in applied.values() if a is not None]
        head = max(live_counts) if live_counts else 0
        snap["replicas"] = [
            {
                "id": i,
                "alive": self.alive[i],
                "applied": applied[i],
                "lag": head - applied[i] if applied[i] is not None else None,
            }
            for i in range(self.n_replicas)
        ]
        live = self.live_replicas()
        if live:
            snap["sm"] = self.query(live[0], "introspect")
        with self._pending_lock:
            snap["pending"] = len(self._pending)
        return snap

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._seq_thread is not None:
            self._kick.set()
            self._seq_thread.join(timeout=5.0)
        self.transport.shutdown(self.alive)
