"""ReplicaGroup: the transport-agnostic replication core.

One object owns everything the paper's ordered-update pipeline needs
(Sec. 5), independent of how items reach the replicas:

- **sequencing** — acquiring the sequencer lock *is* the atomic
  multicast's total order.  With batching enabled (the default)
  submitters only append to a pending queue; a dedicated sequencer
  thread drains the whole queue under the lock and ships it as ONE
  ordered batch.  While the sequencer is marshalling and broadcasting a
  batch, clients keep piling onto the queue — so load makes batches
  bigger exactly when amortizing pickling and queue wakeups matters
  most.  In-band operations (queries, recovery) flush the pending queue
  themselves under the same lock, so "sequenced after everything
  submitted before me" still holds;
- **parking and completion matching** — each submission waits on an
  event; every replica reports completions and the waiter map pops
  exactly once, so duplicates are free and a crashed replica can never
  strand a client on a completion it alone knew about;
- **in-band queries** — fingerprints, space sizes and snapshots travel on
  the command FIFOs, so they observe exactly the state after every
  previously sequenced command (no separate quiescing protocol);
- **the read fast path** — a read-only :class:`ExecuteAGS` (every op
  ``rd``/``rdp``) cannot change replicated state, and identical replicas
  mean any single up-to-date replica can answer it.  :meth:`ReplicaGroup.
  call` routes such statements *around* the total order: one live replica
  receives an in-band read tagged with a **session floor** (the
  highest slot the group has sequenced at that instant) and parks it
  until its applied count reaches the floor, then evaluates the guard on
  local state — read-your-writes consistency with no sequencing, no
  broadcast and one guard evaluation instead of N.  The read lane gets
  the same amortization as the write lane: a dedicated flusher thread
  drains concurrently submitted reads and ships them per replica as one
  ``READS`` item, and replicas answer each served batch with one
  ``COMPS`` — so under read-heavy load the per-operation transport cost
  (pickle + queue wakeup, both ways) is shared.  A blocking read whose
  guard cannot fire locally, and any read stranded by a replica crash,
  falls back transparently to the ordered path (the fallback ladder: fast
  path → reroute on READMISS/crash → ordered park → ordered cancel);
- **crash/recovery bookkeeping** — the alive mask, the ordered
  ``HostFailed``/``HostRecovered`` notifications, and the snapshot-based
  state transfer for transports that support restart;
- **metrics** — submit→order, order→apply and end-to-end AGS latency
  histograms plus submission/batch counters, recorded in one place so
  every backend reports identical instruments;
- **tracing** — with a :class:`~repro.obs.tracing.FlightRecorder`
  attached, every submission is minted a per-AGS trace id that rides
  inside the command through the sequencer batch, the transport (incl.
  the pickled multiproc blob) and the replica apply loops; the group
  records ``submit_to_order`` / ``broadcast`` / ``e2e`` spans here and
  ingests the per-replica ``apply`` spans the workers emit, all under
  one trace.  With no recorder attached (the default) every emit site
  is a single ``is not None`` check and commands carry ``trace_id=None``;
- **profiling & stage attribution** — :meth:`ReplicaGroup.start_profiling`
  runs the :mod:`repro.obs.profile` sampler over this group's registered
  threads (sequencer, read flusher, monitor, in-process replicas) and,
  on per-process transports, drives per-replica samplers through the
  in-band query lane; with :func:`repro.obs.stages.
  enable_stage_attribution` set before construction, every batch carries
  a broadcast stamp and replicas answer with per-batch STAGES emissions,
  decomposing the e2e latency into broadcast / inbox / apply / reply
  histograms (``linda_stage_*``).  Both are strictly opt-in: off, the
  only residue is one boolean check per batch.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
from collections import deque
from typing import Any

from repro._errors import HostFailedError, RuntimeFailure, TimeoutError_
from repro.core.ags import AGSResult
from repro.core.spaces import TSHandle
from repro.core.statemachine import (
    CancelRequest,
    Command,
    ExecuteAGS,
    HostFailed,
    HostRecovered,
)
from repro.obs.events import emit as emit_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    DEFAULT_HZ,
    SamplingProfiler,
    merge_folded,
    register_thread,
)
from repro.obs.stages import stages_enabled
from repro.obs.tracing import FlightRecorder
from repro.replication.transport import Transport

__all__ = ["LivenessPolicy", "ReplicaGroup"]

#: Origin-host id the group stamps on client commands.  Reserved: failure
#: injection uses non-negative *logical* host ids, and HostFailed drops
#: blocked statements whose origin matches — client statements must never.
CLIENT_ORIGIN = -1

#: How long a cancelled statement may take to report back before the whole
#: group is declared unresponsive.
_CANCEL_GRACE_S = 30.0

#: Sentinel answer deposited into a pending query's slot when its target
#: replica crashes — fail fast instead of stalling the full query timeout.
_REPLICA_CRASHED = object()

#: Returned by the chunked-transfer round trip when the donor died (or
#: lost its transfer cache) mid-stream: the fetch resumes from the next
#: live donor instead of failing the whole recovery.
_DONOR_LOST = object()


class LivenessPolicy:
    """Tuning for the failure detector and the self-healing supervisor.

    The detector declares a replica dead only when BOTH halves agree: it
    has been *silent* on the feedback lane for at least ``suspect_after``
    seconds (no completion, query answer, or heartbeat PONG) AND the
    transport-level probe (``Process.is_alive()`` / thread aliveness)
    fails.  Silence alone is just suspicion — a replica grinding through
    a huge batch is quiet but healthy, and the probe keeps it from being
    shot.  A dead vehicle alone is caught within one ``probe_interval``
    of the silence threshold, which bounds detection latency at roughly
    ``suspect_after + probe_interval``.

    ``auto_recover`` additionally drives the snapshot/install recovery
    protocol after each detected death, waiting out a capped exponential
    backoff (``backoff_initial`` doubling up to ``backoff_max``) between
    a replica's successive restarts and giving up for good after
    ``max_restarts`` attempts — a crash-looping replica must not consume
    the group.
    """

    __slots__ = (
        "probe_interval", "suspect_after", "auto_recover", "max_restarts",
        "backoff_initial", "backoff_max",
    )

    def __init__(
        self,
        *,
        probe_interval: float = 0.25,
        suspect_after: float = 1.0,
        auto_recover: bool = False,
        max_restarts: int = 3,
        backoff_initial: float = 0.1,
        backoff_max: float = 2.0,
    ):
        if probe_interval <= 0 or suspect_after <= 0:
            raise ValueError("probe_interval and suspect_after must be positive")
        self.probe_interval = probe_interval
        self.suspect_after = suspect_after
        self.auto_recover = auto_recover
        self.max_restarts = max_restarts
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max


class _Waiter:
    """One parked client submission and its latency timestamps."""

    __slots__ = (
        "event", "slot", "t_submit", "t_ordered", "trace_id", "track", "fellback",
    )

    def __init__(self, t_submit: float):
        self.event = threading.Event()
        self.slot: list[Any] = []
        self.t_submit = t_submit
        self.t_ordered: float | None = None
        self.trace_id: int | None = None
        self.track = ""
        #: Read fast path only (allocated in call()): set once the read has
        #: been reshipped through the total order, so a concurrently
        #: timing-out client never cancels ahead of the reship.
        self.fellback: threading.Event | None = None


class ReplicaGroup:
    """Sequencing, parking, dedup, queries and metrics over a Transport."""

    def __init__(
        self,
        transport: Transport,
        *,
        batching: bool = True,
        read_fastpath: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: FlightRecorder | None = None,
        liveness: LivenessPolicy | bool | None = None,
        name: str = "",
        shard_info: tuple[int, int] | None = None,
        durable_dir: str | None = None,
        durable_fsync: bool = True,
        journal_segment_bytes: int = 1 << 20,
        transfer_chunk_bytes: int | None = 256 * 1024,
    ):
        self.transport = transport
        self.n_replicas = transport.n_replicas
        self.batching = batching
        self.read_fastpath = read_fastpath
        #: Display name when this group is one shard of a ShardedGroup
        #: ("shard0", …); empty for the classic single-group deployment.
        #: Prefixes replica trace tracks ("shard0/replica-1") so the
        #: consistency checker can partition the total-order comparison
        #: per shard — shards are independently sequenced, and comparing
        #: their slot counters across shards would report false forks.
        self.name = name
        #: ``(shard_index, n_shards)`` when sharded, stamped onto the
        #: HostFailed/HostRecovered commands this group sequences so each
        #: shard deposits failure/recovery tuples only into the partitions
        #: it owns (one tuple per space globally, not one per shard).
        self.shard_info = shard_info
        self.alive = [True] * self.n_replicas
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        if liveness is True:
            liveness = LivenessPolicy()
        self.liveness: LivenessPolicy | None = liveness or None
        self._req_ids = itertools.count(1)
        self._qids = itertools.count(1)
        self._seq_lock = threading.Lock()  # holding this IS the total order
        self._pending: deque[tuple[Command, _Waiter | None]] = deque()
        self._pending_lock = threading.Lock()
        self._state_lock = threading.Lock()  # waiters + queries + reads
        self._waiters: dict[int, _Waiter] = {}
        self._queries: dict[tuple[int, int], tuple[threading.Event, list]] = {}
        #: Outstanding fast-path reads: request_id -> (replica_id, command).
        #: Guarded by _state_lock; exactly one of {completion, miss, crash
        #: reroute, client timeout} pops each entry and owns its outcome.
        self._reads: dict[int, tuple[int, Command]] = {}
        #: Count of commands sequenced so far — the session floor for
        #: reads.  Incremented (under _pending_lock) *before* a batch is
        #: broadcast, so by the time any completion reaches a client the
        #: counter already covers the completed command's slot.
        self._sequenced = 0
        #: The read lane's pending queue: (replica, floor, cmd) triples
        #: drained by the read flusher into one READS item per replica —
        #: the same batch amortization the sequencer gives writes, minus
        #: the ordering.  deque append/popleft are atomic; no lock needed.
        self._read_pending: deque[tuple[int, int, ExecuteAGS]] = deque()
        self._read_kick = threading.Event()
        #: Contention detector for the read lane: a reader that gets this
        #: uncontended sends its read itself (lowest latency); one that
        #: finds it held leaves the read for the flusher to batch.
        self._read_send_lock = threading.Lock()
        self._h_submit = self.metrics.histogram("submit_to_order")
        self._h_apply = self.metrics.histogram("order_to_apply")
        self._h_e2e = self.metrics.histogram("ags_e2e")
        self._h_batch = self.metrics.histogram("batch_size", lo=1.0, n_buckets=12)
        self._h_read = self.metrics.histogram("read_latency")
        self._c_cmds = self.metrics.counter("commands_submitted")
        self._c_batches = self.metrics.counter("batches_shipped")
        self._c_read_fast = self.metrics.counter("read_fastpath")
        self._c_read_fallback = self.metrics.counter("read_fallback")
        self._c_failures = self.metrics.counter("failures_detected")
        self._c_autorec = self.metrics.counter("auto_recoveries")
        self._h_detect = self.metrics.histogram("detection_latency")
        self._g_live = self.metrics.gauge("live_replicas")
        self._g_live.set(self.n_replicas)
        #: Backpressure gauges — *sampled* in metrics_snapshot(), never
        #: maintained on the hot path, so they cost nothing per operation.
        self._g_seq_depth = self.metrics.gauge("sequencer_inbox_depth")
        self._g_read_depth = self.metrics.gauge("read_lane_depth")
        self._g_apply_depth = self.metrics.gauge("replica_inbox_max_depth")
        #: Sliding-window companions (repro.obs.window): the same signals
        #: over the trailing 10s/60s/5m, for `cli top`'s "now" view and
        #: the SLO rules — a cumulative p99 can neither burn nor recover.
        self._w_e2e = self.metrics.windows.histogram("ags_e2e")
        self._w_read = self.metrics.windows.histogram("read_latency")
        self._r_cmds = self.metrics.windows.rate("commands_submitted")
        self._r_read_fast = self.metrics.windows.rate("read_fast")
        self._r_read_fb = self.metrics.windows.rate("read_fallback")
        self._r_failures = self.metrics.windows.rate("failures_detected")
        self._r_autorec = self.metrics.windows.rate("auto_recoveries")
        #: Stage attribution (opt-in, read once at construction): when on,
        #: batches carry a broadcast stamp and replicas answer each with a
        #: STAGES emission — see repro.obs.stages.  The histograms exist
        #: only when enabled, so an off-path snapshot carries no empty
        #: stage families.
        self._stages = stages_enabled()
        if self._stages:
            self._h_stage_bcast = self.metrics.histogram("stage_broadcast")
            self._h_stage_queue = self.metrics.histogram("stage_replica_queue")
            self._h_stage_apply = self.metrics.histogram("stage_apply")
            self._h_stage_reply = self.metrics.histogram("stage_reply")
        #: The continuous-profiling plane (strictly opt-in): an in-process
        #: sampler for this group's threads plus, on per-process-worker
        #: transports, per-replica remote samplers driven over the in-band
        #: query lane.
        self._profiler: SamplingProfiler | None = None
        self._remote_profiling = False
        #: Set when an internal thread (sequencer) died: the group can no
        #: longer order commands, and every call fails fast instead of
        #: hanging (read before registering, re-checked via the waiter
        #: sweep in _mark_failed).
        self._group_error: str | None = None
        #: Liveness bookkeeping (all monotonic stamps).  _last_seen is
        #: refreshed by ANY feedback-lane emission — completions double as
        #: heartbeats, and in-band PING/PONG covers idle replicas.
        self._last_seen = [time.monotonic()] * self.n_replicas
        self._restarts = [0] * self.n_replicas
        #: replica -> earliest monotonic time its next restart may run.
        self._recover_pending: dict[int, float] = {}
        self._monitor_stop = threading.Event()
        self._monitor_thread: threading.Thread | None = None
        self._stopped = False
        #: Durable mode: the sequencer's ordered command stream journaled
        #: through a segmented WAL (repro.persist.segments) under the
        #: sequencer lock, so a full-group restart replays the stream and
        #: recovers every replica to the last fsynced slot.
        self.durable_dir = durable_dir
        #: Chunk size for resumable, incarnation-fenced replica state
        #: transfer; None falls back to the legacy one-shot SNAPSHOT item.
        self.transfer_chunk_bytes = transfer_chunk_bytes
        self._journal = None
        self._journal_slot = 0
        self._journal_replaying = False
        self.journal_replayed = 0
        #: Test/chaos hook, called after each fetched transfer chunk with
        #: (donor, idx, total) — lets the chaos harness kill the donor
        #: mid-transfer at a precise chunk boundary.
        self._xfer_chunk_hook = None
        self._c_xfer_chunks = self.metrics.counter("state_transfer_chunks")
        if durable_dir is not None:
            from repro.persist.segments import SegmentedLog

            self._journal = SegmentedLog(
                durable_dir, fsync=durable_fsync,
                segment_bytes=journal_segment_bytes,
            )
        transport.start(self._on_worker_item)
        self._kick = threading.Event()
        self._seq_thread: threading.Thread | None = None
        self._read_thread: threading.Thread | None = None
        if batching:
            self._seq_thread = threading.Thread(
                target=self._sequencer_loop, name="sequencer", daemon=True
            )
            self._seq_thread.start()
            if read_fastpath:
                self._read_thread = threading.Thread(
                    target=self._read_flusher_loop, name="read-flusher",
                    daemon=True,
                )
                self._read_thread.start()
        if self.liveness is not None:
            self._monitor_thread = threading.Thread(
                target=self._monitor_loop, name="liveness-monitor", daemon=True
            )
            self._monitor_thread.start()
        if self._journal is not None:
            self._recover_from_journal()

    # ------------------------------------------------------------------ #
    # sequencing (the bus)
    # ------------------------------------------------------------------ #

    def next_request_id(self) -> int:
        return next(self._req_ids)

    def _replica_track(self, replica_id: int) -> str:
        """Trace track of a replica, shard-qualified when sharded."""
        if self.name:
            return f"{self.name}/replica-{replica_id}"
        return f"replica-{replica_id}"

    def _role(self, base: str) -> str:
        """Profiler role of one of this group's threads, shard-qualified."""
        return f"{self.name}/{base}" if self.name else base

    def call(
        self,
        cmd: Command,
        timeout: float | None = None,
        *,
        retries: int = 0,
        backoff: float = 0.05,
    ) -> Any:
        """Sequence *cmd*, park until its completion, return the result.

        Read-only statements take the read fast path when enabled: they
        are answered by one live replica at a consistent session floor
        instead of being sequenced (see the module docstring), falling
        back to the ordered path when the guard cannot fire locally or
        the chosen replica crashes.

        On timeout an *ordered* statement is withdrawn *through the total
        order* (a :class:`CancelRequest`), then whichever outcome won the
        race — completion or cancellation — is taken, so a timed-out
        ``in`` can never consume a tuple it did not report.

        With ``retries`` > 0, a :class:`TimeoutError_` or
        :class:`HostFailedError` triggers transparent resubmission (up to
        that many extra attempts, sleeping a doubling ``backoff`` between
        them) **with the same request id**: the replicas' completed-request
        memo replays a result that already applied instead of executing
        twice, and a statement the ordered cancel provably withdrew is
        simply re-executed — at-most-once either way.
        """
        attempt = 0
        while True:
            try:
                result = self._call_once(cmd, timeout)
            except (TimeoutError_, HostFailedError):
                if attempt >= retries:
                    raise
            else:
                if not (
                    retries
                    and isinstance(result, AGSResult)
                    and result.error == "cancelled"
                ):
                    return result
                # A stale cancel from an earlier timed-out attempt won the
                # race against this resubmission; the statement did not
                # run, so retrying it is safe.
                if attempt >= retries:
                    return result
            attempt += 1
            if backoff > 0:
                time.sleep(min(backoff * (2 ** (attempt - 1)), 1.0))

    def _call_once(self, cmd: Command, timeout: float | None = None) -> Any:
        """One submission attempt of :meth:`call` (no retry policy)."""
        w = _Waiter(time.monotonic())
        tracer = self.tracer
        if tracer is not None:
            cmd.trace_id = w.trace_id = tracer.next_trace_id()
            w.track = f"client:{threading.current_thread().name}"
        with self._state_lock:
            self._waiters[cmd.request_id] = w
        if self._group_error is not None:
            # registered-then-checked: whichever side _mark_failed's sweep
            # lands on, this waiter is popped and the call raises
            with self._state_lock:
                self._waiters.pop(cmd.request_id, None)
            raise RuntimeFailure(self._group_error)
        self._c_cmds.inc()
        self._r_cmds.inc()
        if (
            self.read_fastpath
            and isinstance(cmd, ExecuteAGS)
            and cmd.ags.read_only
        ):
            w.fellback = threading.Event()
            if self._send_read(cmd):
                return self._await_read(cmd, w, timeout)
        self._ship(cmd, w)
        if w.event.wait(timeout):
            return self._resolve(w.slot[0])
        return self._finish_ordered_timeout(cmd, w, timeout)

    @staticmethod
    def _resolve(result: Any) -> Any:
        """Raise failure results (poison commands, group death) in the caller.

        A :class:`RuntimeFailure` instance in a waiter slot is an outcome
        the replicas (or the group itself) computed for this request —
        ``CommandFailed`` from the apply loop's poison barrier, or the
        group-failed error — and must surface as an exception, not a
        return value.  Deterministic *domain* results (``AGSResult`` with
        an error, ``SpaceError`` from create/destroy) pass through
        untouched; the runtime layer interprets those.
        """
        if isinstance(result, RuntimeFailure):
            raise result
        return result

    def _finish_ordered_timeout(
        self, cmd: Command, w: _Waiter, timeout: float | None
    ) -> Any:
        """The ordered cancel dance after a parked call's guard timeout."""
        self.post(CancelRequest(self.next_request_id(), CLIENT_ORIGIN, cmd.request_id))
        if not w.event.wait(_CANCEL_GRACE_S):
            with self._state_lock:
                self._waiters.pop(cmd.request_id, None)
            # neither the completion nor the cancel reported back: the
            # command may yet apply, and only the request-id memo makes a
            # resubmission safe
            raise TimeoutError_("replica group unresponsive", outcome="unknown")
        result = w.slot[0]
        if isinstance(result, AGSResult) and result.error == "cancelled":
            raise TimeoutError_(
                f"guard not satisfied within {timeout}s", outcome="cancelled"
            )
        return self._resolve(result)

    # ------------------------------------------------------------------ #
    # the read fast path
    # ------------------------------------------------------------------ #

    def _send_read(self, cmd: ExecuteAGS) -> bool:
        """Route a read-only statement to one live replica.

        The session floor is the highest slot the group has *sequenced*
        at this instant.  Any command whose completion a client has seen
        was sequenced before its completion was reported, so it sits at
        or below the floor — the answering replica parks the read until
        it has applied that much, giving read-your-writes (and
        read-anyone's-completed-writes) without entering the order.
        Commands still *pending* are deliberately not covered: they have
        completed for nobody yet, and waiting on them would re-couple
        reads to the sequencing of unrelated writers.

        Returns False when no replica could take the read (none live, or
        the chosen one crashed mid-send) — the caller ships it ordered.
        """
        live = self.live_replicas()
        if not live:
            return False
        # Sticky routing: a client thread's reads all land on the same
        # replica (its session floor is already applied there, and the
        # replica stays hot), while distinct clients hash across the live
        # set for balance.  Membership changes just re-hash.
        replica = live[threading.get_ident() % len(live)]
        with self._pending_lock:
            floor = self._sequenced
        with self._state_lock:
            self._reads[cmd.request_id] = (replica, cmd)
        if self._read_send_lock.acquire(blocking=False):
            # idle lane: send directly — one thread hop fewer, which is
            # most of a fast read's latency at low concurrency
            try:
                self.transport.send(replica, ("READS", [(floor, cmd)]))
            finally:
                self._read_send_lock.release()
        elif self._read_thread is not None:
            # another reader holds the lane: join the flusher's next
            # per-replica batch instead of queueing up a send per read
            self._read_pending.append((replica, floor, cmd))
            self._read_kick.set()
        else:
            self.transport.send(replica, ("READS", [(floor, cmd)]))
        if not self.alive[replica]:
            # Raced crash_replica: whoever pops the registration owns the
            # reroute.  If the crash handler already did, the ordered
            # fallback is in flight and the fast path "took" the read.
            with self._state_lock:
                if self._reads.pop(cmd.request_id, None) is not None:
                    return False
        self._c_read_fast.inc()
        self._r_read_fast.inc()
        return True

    def _await_read(self, cmd: ExecuteAGS, w: _Waiter, timeout: float | None) -> Any:
        """Wait out a fast-path read; degrade to the ordered ladder."""
        if w.event.wait(timeout):
            elapsed = time.monotonic() - w.t_submit
            self._h_read.record(elapsed)
            self._w_read.record(elapsed)
            return self._resolve(w.slot[0])
        with self._state_lock:
            owned = self._reads.pop(cmd.request_id, None)
            if owned is not None:
                self._waiters.pop(cmd.request_id, None)
        if owned is not None:
            # Still on the fast path: nothing is parked in the total order
            # and reads consume nothing, so no ordered cancel is needed.
            raise TimeoutError_(f"guard not satisfied within {timeout}s")
        if w.event.is_set():
            # completion won the race with the deadline
            return self._resolve(w.slot[0])
        # The read fell back to the ordered path before the deadline and
        # is parked there — wait for the reship to actually be enqueued
        # (the fallback claim and its _ship are not atomic), then withdraw
        # it through the order as usual.
        if w.fellback is not None:
            w.fellback.wait(1.0)
        return self._finish_ordered_timeout(cmd, w, timeout)

    def _fallback_read(self, request_id: int) -> None:
        """Reship an outstanding fast-path read through the total order."""
        with self._state_lock:
            entry = self._reads.pop(request_id, None)
            w = self._waiters.get(request_id) if entry is not None else None
        if entry is not None and w is not None:
            self._c_read_fallback.inc()
            self._r_read_fb.inc()
            self._ship(entry[1], w)
            if w.fellback is not None:
                w.fellback.set()

    def _reroute_reads(self, replica_id: int) -> None:
        """Reship every read stranded on a crashed replica."""
        with self._state_lock:
            stranded = [
                rid
                for rid, (target, _cmd) in self._reads.items()
                if target == replica_id
            ]
        for rid in stranded:
            self._fallback_read(rid)

    def post(self, cmd: Command) -> None:
        """Sequence *cmd* without waiting for any completion."""
        if self._group_error is not None:
            raise RuntimeFailure(self._group_error)
        tracer = self.tracer
        if tracer is not None:
            cmd.trace_id = tracer.next_trace_id()
        self._ship(cmd, None)

    def _ship(self, cmd: Command, w: _Waiter | None) -> None:
        if not self.batching:
            with self._seq_lock:
                with self._pending_lock:
                    self._sequenced += 1
                self._broadcast_batch([(cmd, w)])
            return
        with self._pending_lock:
            self._pending.append((cmd, w))
        self._kick.set()

    def _flush_pending_locked(self) -> bool:
        """Ship everything pending as one batch.  Caller holds _seq_lock.

        Commands leave the pending queue only under the sequencer lock, so
        anything not yet broadcast is still visible here — which is what
        lets queries and recovery flush-then-send to stay in-band.
        """
        with self._pending_lock:
            if not self._pending:
                return False
            batch = list(self._pending)
            self._pending.clear()
            # counted as sequenced before the broadcast below: a read
            # floor taken after any of these commands completes must
            # already cover their slots
            self._sequenced += len(batch)
        self._broadcast_batch(batch)
        return True

    def _sequencer_loop(self) -> None:
        """Drain the pending queue into ordered batches until shutdown.

        A dedicated thread rather than drain-on-submit: while it is
        marshalling one batch, every concurrently submitting client simply
        appends — so the next batch is as large as the current one was
        slow, and per-command marshalling cost amortizes under load.

        An unexpected exception here is fatal to the whole group — nothing
        can be ordered any more — so it marks the group failed and wakes
        every parked client with :class:`RuntimeFailure` instead of
        leaving them to hang forever against a dead bus.
        """
        register_thread(self._role("sequencer"))
        try:
            while True:
                self._kick.wait()
                self._kick.clear()
                while True:
                    with self._seq_lock:
                        if not self._flush_pending_locked():
                            break
                if self._stopped:
                    with self._seq_lock:
                        self._flush_pending_locked()
                    return
        except Exception as exc:  # noqa: BLE001 - the group must not wedge
            self._mark_failed(
                f"sequencer thread died: {type(exc).__name__}: {exc}"
            )

    def _mark_failed(self, reason: str) -> None:
        """The group can no longer order commands: fail everything, fast.

        Every parked waiter wakes with a :class:`RuntimeFailure` (a fresh
        instance each, so tracebacks don't cross threads), every pending
        query gets the crashed sentinel, and subsequent calls/posts raise
        at entry via ``_group_error``.
        """
        self._group_error = reason
        emit_event(
            "group_failed", severity="critical",
            group=self.name or "group", reason=reason,
        )
        with self._state_lock:
            waiters = list(self._waiters.values())
            self._waiters.clear()
            queries = list(self._queries.values())
            self._queries.clear()
            self._reads.clear()
        for w in waiters:
            w.slot.append(RuntimeFailure(reason))
            w.event.set()
        for event, slot in queries:
            slot.append(_REPLICA_CRASHED)
            event.set()
        if self.tracer is not None:
            self.tracer.record_span(
                time.monotonic(), "sequencer", "group", "group_failed",
                args={"reason": reason, "waiters_failed": len(waiters)},
            )

    def _read_flusher_loop(self) -> None:
        """Drain the read lane into per-replica READS batches until shutdown.

        The write lane's amortization argument, replayed: while this
        thread is shipping one batch, concurrently submitting readers
        keep appending — so each transport send (and, on the pickling
        transport, each marshalling pass) carries as many reads as the
        previous send was slow.  A read enqueued for a replica that
        crashed after registration still gets shipped here; the dead
        FIFO drops it, and the crash handler's reroute owns the outcome.

        Unlike the sequencer, this thread's death is survivable: the fast
        path degrades to direct sends (``_read_thread`` is cleared, which
        is exactly the condition ``_send_read`` already checks), and any
        read stranded on the queue is rerouted through the total order.
        """
        register_thread(self._role("read-flusher"))
        pending = self._read_pending
        try:
            while True:
                self._read_kick.wait()
                self._read_kick.clear()
                while pending:
                    by_replica: dict[int, list[tuple[int, ExecuteAGS]]] = {}
                    try:
                        while True:
                            replica, floor, cmd = pending.popleft()
                            by_replica.setdefault(replica, []).append((floor, cmd))
                    except IndexError:
                        pass
                    # hold the lane lock while shipping so concurrent readers
                    # keep feeding the next batch instead of racing us
                    with self._read_send_lock:
                        for replica, reads in by_replica.items():
                            self.transport.send(replica, ("READS", reads))
                if self._stopped:
                    return
        except Exception:  # noqa: BLE001 - degrade, don't strand readers
            self._read_thread = None
            while True:
                try:
                    entry = pending.popleft()
                except IndexError:
                    break
                if len(entry) != 3:
                    continue  # the malformed item that killed the loop
                self._fallback_read(entry[2].request_id)

    def _broadcast_batch(self, batch: list[tuple[Command, _Waiter | None]]) -> None:
        # Durable mode: journal the ordered stream BEFORE it reaches any
        # replica.  _broadcast_batch only ever runs under _seq_lock, so
        # journal order is exactly the total order, and a batch costs one
        # fsync (append_many), not one per command.  Journal slot k holds
        # the k-th sequenced command — the same coordinate as a replica's
        # applied count, which is what lets compaction use a replica
        # snapshot's `applied` as the covered-slot watermark.
        if self._journal is not None and not self._journal_replaying:
            base = self._journal_slot
            self._journal.append_many(
                (base + i + 1, cmd) for i, (cmd, _w) in enumerate(batch)
            )
            self._journal_slot = base + len(batch)
        now = time.monotonic()
        cmds = []
        for cmd, w in batch:
            cmds.append(cmd)
            if w is not None:
                w.t_ordered = now
                self._h_submit.record(now - w.t_submit)
        self._c_batches.inc()
        self._h_batch.record(len(batch))
        if self._stages:
            # the stamp rides inside the batch item (and through the
            # pickled blob), so every replica can report how long the
            # batch sat in its inbox; CLOCK_MONOTONIC is system-wide on
            # Linux, making the stamp comparable across processes
            t_bcast = time.monotonic()
            info = self.transport.broadcast(("BATCH", cmds, t_bcast), self.alive)
            self._h_stage_bcast.record(time.monotonic() - t_bcast)
        else:
            info = self.transport.broadcast(("BATCH", cmds), self.alive)
        tracer = self.tracer
        if tracer is not None:
            self._trace_batch(tracer, batch, now, info)

    def _trace_batch(
        self,
        tracer: FlightRecorder,
        batch: list[tuple[Command, _Waiter | None]],
        t_ordered: float,
        info: Any,
    ) -> None:
        """Record the batch's broadcast span and each AGS's submit span."""
        traced: list[int] = []
        for cmd, w in batch:
            if cmd.trace_id is None:
                continue
            traced.append(cmd.trace_id)
            if w is not None:
                tracer.record_span(
                    w.t_submit,
                    w.track,
                    "client",
                    "submit_to_order",
                    dur=t_ordered - w.t_submit,
                    trace_id=cmd.trace_id,
                    args={"request_id": cmd.request_id},
                )
        args: dict[str, Any] = {"batch": len(batch), "trace_ids": traced}
        if isinstance(info, int):
            args["bytes"] = info
        tracer.record_span(
            t_ordered,
            "sequencer",
            "group",
            "broadcast",
            dur=time.monotonic() - t_ordered,
            args=args,
        )

    # ------------------------------------------------------------------ #
    # worker emissions (completions + query answers)
    # ------------------------------------------------------------------ #

    def _complete(self, replica_id: int, rid: int, result: Any) -> None:
        """Deliver one completion: pop-as-claim, record latencies, wake."""
        with self._state_lock:
            w = self._waiters.pop(rid, None)
            self._reads.pop(rid, None)
        if w is not None:
            now = time.monotonic()
            if w.t_ordered is not None:
                self._h_apply.record(now - w.t_ordered)
            self._h_e2e.record(now - w.t_submit)
            self._w_e2e.record(now - w.t_submit)
            tracer = self.tracer
            if tracer is not None and w.trace_id is not None:
                tracer.record_span(
                    w.t_submit,
                    w.track,
                    "client",
                    "e2e",
                    dur=now - w.t_submit,
                    trace_id=w.trace_id,
                    args={"request_id": rid, "replica": replica_id},
                )
            w.slot.append(result)
            w.event.set()

    def _on_worker_item(self, replica_id: int, item: tuple) -> None:
        # any emission proves the apply loop is running: completions (and
        # everything else on the feedback lane) double as heartbeats
        self._last_seen[replica_id] = time.monotonic()
        kind = item[0]
        if kind == "PONG":
            return  # the timestamp refresh above was the whole point
        if kind == "COMP":
            self._complete(replica_id, item[1], item[2])
        elif kind == "COMPS":
            # one READS batch's worth of fast-path answers
            for rid, result in item[1]:
                self._complete(replica_id, rid, result)
        elif kind == "READMISS":
            # a blocking read's guard cannot fire on the replica's local
            # state: reroute it through the total order, where it parks
            self._fallback_read(item[1])
        elif kind == "SPANS":
            tracer = self.tracer
            if tracer is not None:
                track = self._replica_track(replica_id)
                for trace_id, rid, slot, ts, dur in item[1]:
                    tracer.record_span(
                        ts,
                        track,
                        "replica",
                        "apply",
                        dur=dur,
                        trace_id=trace_id,
                        args={"slot": slot, "request_id": rid},
                    )
        elif kind == "STAGES":
            if self._stages:
                _k, queue_s, apply_s, t_emit = item
                self._h_stage_queue.record(queue_s)
                self._h_stage_apply.record(apply_s)
                # the reply stage: how long the replica's answer took to
                # reach this collector — the same hop a completion takes
                # to wake its client
                self._h_stage_reply.record(time.monotonic() - t_emit)
        elif kind == "QUERY":
            _k, qid, answering_replica, answer = item
            with self._state_lock:
                waiter = self._queries.pop((qid, answering_replica), None)
            if waiter is not None:
                event, slot = waiter
                slot.append(answer)
                event.set()

    # ------------------------------------------------------------------ #
    # in-band queries
    # ------------------------------------------------------------------ #

    def _register_query(
        self, replica_id: int
    ) -> tuple[int, threading.Event, list]:
        qid = next(self._qids)
        event = threading.Event()
        slot: list = []
        with self._state_lock:
            self._queries[(qid, replica_id)] = (event, slot)
        return qid, event, slot

    def _fail_queries(self, replica_id: int) -> None:
        """Answer every query pending on a crashed replica with a sentinel."""
        with self._state_lock:
            keys = [k for k in self._queries if k[1] == replica_id]
            victims = [self._queries.pop(k) for k in keys]
        for event, slot in victims:
            slot.append(_REPLICA_CRASHED)
            event.set()

    def query(
        self, replica_id: int, what: str, arg: Any = None, timeout: float = 30.0
    ) -> Any:
        """In-band query: answered after all previously sequenced commands.

        Fails fast on a replica that is already crashed — or that crashes
        while the query is pending (crash_replica deposits a sentinel
        answer) — instead of stalling out the full timeout; the
        registration never outlives the call, whichever way it ends.
        """
        if not self.alive[replica_id]:
            raise TimeoutError_(f"replica {replica_id} has crashed")
        qid, event, slot = self._register_query(replica_id)
        with self._seq_lock:  # serialize against broadcasts: stay in-band
            self._flush_pending_locked()
            self.transport.send(replica_id, ("QUERY", qid, what, arg))
        if not self.alive[replica_id] and not event.is_set():
            # raced crash_replica past its pending-query sweep
            with self._state_lock:
                self._queries.pop((qid, replica_id), None)
            raise TimeoutError_(f"replica {replica_id} has crashed")
        if not event.wait(timeout):
            with self._state_lock:
                self._queries.pop((qid, replica_id), None)
            raise TimeoutError_(f"replica {replica_id} did not answer query")
        if slot[0] is _REPLICA_CRASHED:
            raise TimeoutError_(f"replica {replica_id} crashed during query")
        return slot[0]

    # ------------------------------------------------------------------ #
    # membership: crash, failure notification, recovery
    # ------------------------------------------------------------------ #

    def live_replicas(self) -> list[int]:
        return [i for i in range(self.n_replicas) if self.alive[i]]

    def crash_replica(self, replica_id: int, *, notify: bool = True) -> None:
        """Halt one replica mid-stream; optionally deposit its failure tuple."""
        self._declare_dead(replica_id, notify=notify, cause="crash_replica")

    def _declare_dead(
        self, replica_id: int, *, notify: bool = True, cause: str = "detector"
    ) -> bool:
        """The single path out of the live set, cooperative or detected.

        Returns False when the replica was already dead (the idempotence
        that lets the detector and a concurrent ``crash_replica`` race
        safely).  Everything the paper's fail-stop conversion needs
        happens here: the alive-mask flip under the sequencer lock, the
        ordered ``HostFailed`` (one failure tuple at the same slot on
        every survivor), failing pending queries fast and rerouting
        stranded fast-path reads.
        """
        with self._seq_lock:
            # the sequencer reads the alive mask while broadcasting; flip
            # it under the same lock so a batch never ships against a
            # half-updated live set
            if not self.alive[replica_id]:
                return False
            self.alive[replica_id] = False
        self._g_live.set(len(self.live_replicas()))
        self.transport.stop_replica(replica_id)
        # anything parked on the dead replica can never be answered by it:
        # fail its pending queries fast, reroute its outstanding reads
        self._fail_queries(replica_id)
        self._reroute_reads(replica_id)
        if self.tracer is not None:
            self.tracer.record_span(
                time.monotonic(), self._replica_track(replica_id),
                "membership", "crash",
                args={"cause": cause},
            )
        emit_event(
            "replica_dead", severity="warning",
            group=self.name or "group", replica=replica_id, cause=cause,
        )
        if notify and any(self.alive):
            self.post(
                HostFailed(
                    self.next_request_id(), CLIENT_ORIGIN, replica_id,
                    shard=self.shard_info,
                )
            )
        return True

    # ------------------------------------------------------------------ #
    # failure detection + self-healing (the liveness plane)
    # ------------------------------------------------------------------ #

    def _monitor_loop(self) -> None:
        """Detect dead replicas; drive auto-recovery.  One thread, opt-in.

        Each tick pings every live replica in-band (a healthy replica's
        PONG — or any other emission — refreshes ``_last_seen``), then
        declares dead any replica that is BOTH silent past
        ``suspect_after`` AND failing the transport probe.  Silence alone
        never kills: a replica buried in a long batch answers its PING
        late but its process/thread is demonstrably alive.  The dead are
        declared through the same path as a cooperative ``crash_replica``,
        so survivors see one ordered failure tuple at one slot.
        """
        # lazy: parallel._liveness imports replication the other way round
        from repro.parallel._liveness import register_monitor_thread

        register_monitor_thread(self.name)
        policy = self.liveness
        assert policy is not None
        while not self._monitor_stop.wait(policy.probe_interval):
            if self._stopped or self._group_error is not None:
                return
            now = time.monotonic()
            for i in range(self.n_replicas):
                if not self.alive[i]:
                    continue
                try:
                    self.transport.send(i, ("PING",))
                except Exception:  # noqa: BLE001 - a dying queue is itself a signal
                    pass
                silent = now - self._last_seen[i]
                if silent < policy.suspect_after:
                    continue
                if self.transport.probe(i):
                    continue  # suspect, but demonstrably alive: keep waiting
                self._detected_failure(i, silent)
            self._drive_recoveries(time.monotonic())

    def _detected_failure(self, replica_id: int, silent: float) -> None:
        if not self._declare_dead(replica_id, notify=True, cause="detector"):
            return  # raced a cooperative crash_replica; it owned the death
        self._c_failures.inc()
        self._r_failures.inc()
        self._h_detect.record(silent)
        emit_event(
            "failure_detected", severity="warning",
            group=self.name or "group", replica=replica_id,
            silent_s=round(silent, 4),
        )
        if self.tracer is not None:
            self.tracer.record_span(
                time.monotonic(), "monitor", "liveness", "detect",
                args={"replica": replica_id, "silent_s": round(silent, 4)},
            )
        policy = self.liveness
        if (
            policy is not None
            and policy.auto_recover
            and self.transport.supports_recovery
        ):
            self._schedule_recovery(replica_id)

    def _schedule_recovery(self, replica_id: int) -> None:
        policy = self.liveness
        assert policy is not None
        attempts = self._restarts[replica_id]
        if attempts >= policy.max_restarts:
            if self.tracer is not None:
                self.tracer.record_span(
                    time.monotonic(), "monitor", "liveness", "gave_up",
                    args={"replica": replica_id, "restarts": attempts},
                )
            emit_event(
                "recovery_gave_up", severity="error",
                group=self.name or "group", replica=replica_id,
                restarts=attempts,
            )
            return  # crash-looping: the restart budget is spent
        delay = min(
            policy.backoff_initial * (2.0 ** attempts), policy.backoff_max
        )
        self._recover_pending[replica_id] = time.monotonic() + delay

    def _drive_recoveries(self, now: float) -> None:
        for replica_id, due in list(self._recover_pending.items()):
            if self.alive[replica_id]:
                self._recover_pending.pop(replica_id, None)
                continue
            if now < due:
                continue
            self._recover_pending.pop(replica_id, None)
            self._restarts[replica_id] += 1
            t0 = time.monotonic()
            try:
                self.recover_replica(replica_id)
            except Exception:  # noqa: BLE001 - retry with more backoff
                self._schedule_recovery(replica_id)
            else:
                self._c_autorec.inc()
                self._r_autorec.inc()
                emit_event(
                    "auto_recovered",
                    group=self.name or "group", replica=replica_id,
                    attempt=self._restarts[replica_id],
                    took_s=round(time.monotonic() - t0, 4),
                )
                if self.tracer is not None:
                    self.tracer.record_span(
                        t0, "monitor", "liveness", "auto_recover",
                        dur=time.monotonic() - t0,
                        args={
                            "replica": replica_id,
                            "attempt": self._restarts[replica_id],
                        },
                    )

    def inject_failure(self, host_id: int) -> None:
        """Deposit a failure tuple for a *logical* host (worker) id."""
        self.post(
            HostFailed(
                self.next_request_id(), CLIENT_ORIGIN, host_id,
                shard=self.shard_info,
            )
        )

    def recover_replica(self, replica_id: int, *, timeout: float = 30.0) -> None:
        """Restart a crashed replica and transfer state into it.

        The snapshot is captured from a live donor *at a quiet point in
        the total order* — the sequencer lock is held, so no command can
        slip between capture and readmission.  A ``HostRecovered`` command
        then deposits the recovery tuple, as on the simulated cluster.

        With ``transfer_chunk_bytes`` set (the default) the snapshot
        travels as bounded chunks instead of one item, and the fetch is
        *resumable*: a donor dying mid-transfer is noticed within a probe
        interval and the remaining chunks come from the next live donor
        (donors frozen at the same slot produce identical snapshot bytes,
        so already-fetched chunks stay valid; a byte-level mismatch is
        detected by the transfer descriptor and restarts the fetch).
        Donors lost mid-transfer are declared dead only *after* the
        sequencer lock is released — _declare_dead retakes it.
        """
        if self.alive[replica_id]:
            return
        if not self.transport.supports_recovery:
            raise TimeoutError_(
                f"{type(self.transport).__name__} does not support replica restart"
            )
        dead_donors: list[int] = []
        try:
            self._recover_replica_locked(replica_id, timeout, dead_donors)
        finally:
            for d in dead_donors:
                self._declare_dead(d, notify=True, cause="transfer_donor")

    def _recover_replica_locked(
        self, replica_id: int, timeout: float, dead_donors: list[int]
    ) -> None:
        with self._seq_lock:  # freeze the order: nothing sequenced past us
            self._flush_pending_locked()
            chunks: list[bytes] | None = None
            snapshot = None
            if self.transfer_chunk_bytes:
                chunks, applied = self._fetch_snapshot_chunked(
                    timeout, dead_donors
                )
            else:
                donor = next(
                    (i for i in self.live_replicas() if i not in dead_donors),
                    None,
                )
                if donor is None:
                    raise TimeoutError_("no live replica to transfer state from")
                qid, event, slot = self._register_query(donor)
                self.transport.send(donor, ("SNAPSHOT", qid))
                if not event.wait(timeout):
                    with self._state_lock:
                        self._queries.pop((qid, donor), None)
                    raise TimeoutError_("donor replica did not produce a snapshot")
                snapshot, applied = slot[0]
            self.transport.restart_replica(replica_id)
            qid2, event2, slot2 = self._register_query(replica_id)
            if chunks is not None:
                total = len(chunks)
                for idx, chunk in enumerate(chunks):
                    self.transport.send(
                        replica_id, ("INSTALL_CHUNK", qid2, idx, total, chunk)
                    )
                self.transport.send(
                    replica_id, ("INSTALL_DONE", qid2, qid2, total)
                )
            else:
                self.transport.send(
                    replica_id, ("INSTALL", qid2, snapshot, applied)
                )
            self.alive[replica_id] = True
            # a rejoining replica starts with a clean liveness slate —
            # without this the monitor would re-suspect it instantly
            self._last_seen[replica_id] = time.monotonic()
            # broadcast the recovery tuple before anyone can observe the
            # flipped alive mask: a caller polling ``alive`` must never
            # fingerprint the group with HostRecovered applied on some
            # replicas but still un-sequenced for others (``post`` would
            # retake the sequencer lock on the unbatched path, so ship
            # directly — we already hold the order)
            rec = HostRecovered(
                self.next_request_id(), CLIENT_ORIGIN, replica_id,
                shard=self.shard_info,
            )
            if self.tracer is not None:
                rec.trace_id = self.tracer.next_trace_id()
            with self._pending_lock:
                self._sequenced += 1
            self._broadcast_batch([(rec, None)])
        self._g_live.set(len(self.live_replicas()))
        self._recover_pending.pop(replica_id, None)
        if not event2.wait(timeout):
            with self._state_lock:
                self._queries.pop((qid2, replica_id), None)
            raise TimeoutError_("recovered replica did not confirm install")
        if slot2[0] != "installed":
            raise TimeoutError_(
                f"recovered replica rejected the transferred state: {slot2[0]!r}"
            )
        if self.tracer is not None:
            self.tracer.record_span(
                time.monotonic(),
                self._replica_track(replica_id),
                "membership",
                "recover",
                args={"applied": applied},
            )
        emit_event(
            "replica_recovered",
            group=self.name or "group", replica=replica_id, applied=applied,
        )

    # ------------------------------------------------------------------ #
    # chunked state transfer (donor side driver)
    # ------------------------------------------------------------------ #

    def _xfer_query(self, donor: int, item_fn, timeout: float) -> Any:
        """One transfer round trip to *donor* while holding ``_seq_lock``.

        Waits with a short poll so a donor dying mid-transfer is noticed
        via ``transport.probe`` within ~20ms instead of stalling out the
        full timeout — crucially WITHOUT calling ``_declare_dead``, which
        retakes the sequencer lock this thread already holds (the caller
        defers the declaration until after release).  Returns the answer,
        or :data:`_DONOR_LOST`.
        """
        qid, event, slot = self._register_query(donor)
        try:
            self.transport.send(donor, item_fn(qid))
        except Exception:  # noqa: BLE001 - a dying queue is itself the signal
            with self._state_lock:
                self._queries.pop((qid, donor), None)
            return _DONOR_LOST
        deadline = time.monotonic() + timeout
        while not event.wait(0.02):
            if not self.transport.probe(donor):
                with self._state_lock:
                    self._queries.pop((qid, donor), None)
                return _DONOR_LOST
            if time.monotonic() >= deadline:
                with self._state_lock:
                    self._queries.pop((qid, donor), None)
                raise TimeoutError_(
                    f"donor {donor} did not answer state transfer"
                )
        if slot[0] is _REPLICA_CRASHED:
            return _DONOR_LOST
        return slot[0]

    def _fetch_snapshot_chunked(
        self, timeout: float, dead_donors: list[int]
    ) -> tuple[list[bytes], int]:
        """Fetch a donor snapshot as bounded chunks.  Caller holds ``_seq_lock``.

        Resumable across donor death: every live donor is frozen at the
        same slot (the lock is held, pending flushed, and XFER_BEGIN is
        in-band), so converged donors serialize to identical bytes and a
        second donor can serve the chunks the first never delivered.  The
        transfer descriptor ``(n_chunks, n_bytes, applied)`` guards the
        resumption — any mismatch restarts accumulation from chunk 0.
        Donors that die mid-transfer are appended to *dead_donors* for
        the caller to declare dead after the lock is released.
        """
        assert self.transfer_chunk_bytes
        chunks: list[bytes] = []
        meta: tuple[int, int, int] | None = None
        tried: set[int] = set()
        while True:
            donor = next(
                (
                    i
                    for i in self.live_replicas()
                    if i not in tried and i not in dead_donors
                ),
                None,
            )
            if donor is None:
                raise TimeoutError_("no live replica to transfer state from")
            begin = self._xfer_query(
                donor,
                lambda qid: ("XFER_BEGIN", qid, self.transfer_chunk_bytes),
                timeout,
            )
            if begin is _DONOR_LOST:
                dead_donors.append(donor)
                continue
            _tag, xid, total, total_bytes, applied = begin
            if meta != (total, total_bytes, applied):
                chunks.clear()
                meta = (total, total_bytes, applied)
            lost = False
            while len(chunks) < total:
                idx = len(chunks)
                chunk = self._xfer_query(
                    donor, lambda qid: ("XFER_CHUNK", qid, xid, idx), timeout
                )
                if chunk is _DONOR_LOST:
                    dead_donors.append(donor)
                    lost = True
                    break
                if chunk is None:
                    # alive but forgot the transfer (restarted in between):
                    # renegotiate with the next donor, keeping what we have
                    tried.add(donor)
                    lost = True
                    break
                chunks.append(chunk)
                self._c_xfer_chunks.inc()
                emit_event(
                    "state_transfer_chunk",
                    group=self.name or "group",
                    donor=donor,
                    chunk=idx,
                    total=total,
                    bytes=len(chunk),
                )
                hook = self._xfer_chunk_hook
                if hook is not None:
                    hook(donor, idx, total)
            if lost:
                continue
            self.transport.send(donor, ("XFER_END", xid))
            return chunks, applied

    # ------------------------------------------------------------------ #
    # the durable journal (sequencer-stream WAL)
    # ------------------------------------------------------------------ #

    def _recover_from_journal(self) -> None:
        """Replay the durable journal into the (fresh) replicas.

        Runs once, at construction, before any client can submit: the
        newest readable snapshot is installed on every replica, then the
        delta records re-broadcast through the normal batch path with
        journaling suppressed (they are already on disk).  Completions
        from replayed commands find no waiter and are dropped — their
        clients died with the previous incarnation, exactly the WAL
        recovery semantics.  Request ids fast-forward past everything
        replayed so a fresh command can never collide with a memoized
        completion.
        """
        from repro.persist.segments import replay_dir

        res = replay_dir(self.durable_dir)
        if res.snapshot is None and not res.records:
            return
        t0 = time.monotonic()
        highest_rid = 0
        self._journal_replaying = True
        try:
            with self._seq_lock:
                if res.snapshot is not None:
                    waits = []
                    for i in self.live_replicas():
                        qid, event, _slot = self._register_query(i)
                        self.transport.send(
                            i, ("INSTALL", qid, res.snapshot, res.snapshot_slot)
                        )
                        waits.append((i, qid, event))
                    for i, qid, event in waits:
                        if not event.wait(30.0):
                            with self._state_lock:
                                self._queries.pop((qid, i), None)
                            raise RuntimeFailure(
                                f"replica {i} did not confirm journal "
                                "snapshot install"
                            )
                    self._journal_slot = res.snapshot_slot
                    with self._pending_lock:
                        # replicas resume at applied == snapshot_slot, so
                        # read floors must count from there too
                        self._sequenced = res.snapshot_slot
                    for rid, _result in res.snapshot.get("completed", []):
                        highest_rid = max(highest_rid, rid)
                    for b in res.snapshot.get("blocked", []):
                        highest_rid = max(highest_rid, b[0])
                if res.records:
                    with self._pending_lock:
                        self._sequenced += len(res.records)
                    self._broadcast_batch(
                        [(cmd, None) for _slot, cmd in res.records]
                    )
                    self._journal_slot = res.records[-1][0]
                    for _slot, cmd in res.records:
                        highest_rid = max(
                            highest_rid, getattr(cmd, "request_id", 0)
                        )
        finally:
            self._journal_replaying = False
        self._req_ids = itertools.count(highest_rid + 1)
        self.journal_replayed = len(res.records) + (
            1 if res.snapshot is not None else 0
        )
        emit_event(
            "journal_recovered",
            group=self.name or "group",
            dir=self.durable_dir,
            snapshot_slot=res.snapshot_slot,
            records=len(res.records),
            torn_records=res.torn_records,
            torn_snapshots=res.torn_snapshots,
            seconds=round(time.monotonic() - t0, 4),
        )

    def compact_journal(self, *, timeout: float = 30.0) -> int | None:
        """Snapshot a live replica and prune the journal prefix it covers.

        The snapshot travels the in-band query lane after a pending
        flush, so it reflects exactly the journaled prefix — its
        ``applied`` count IS the covered journal slot.  The disk work
        (snapshot temp+rename, manifest, prune) runs outside the
        sequencer lock; pruning only ever touches closed segments, so it
        cannot race the sequencer's appends to the active one.
        """
        if self._journal is None:
            return None
        donor = next(iter(self.live_replicas()), None)
        if donor is None:
            raise TimeoutError_("no live replica to snapshot the journal from")
        qid, event, slot = self._register_query(donor)
        with self._seq_lock:
            self._flush_pending_locked()
            self.transport.send(donor, ("SNAPSHOT", qid))
        if not event.wait(timeout):
            with self._state_lock:
                self._queries.pop((qid, donor), None)
            raise TimeoutError_("donor replica did not produce a journal snapshot")
        if slot[0] is _REPLICA_CRASHED:
            raise TimeoutError_("donor crashed during journal compaction")
        snapshot, applied = slot[0]
        emit_event(
            "snapshot_started", group=self.name or "group", slot=applied
        )
        blob = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        self._journal.write_snapshot(applied, blob)
        self._journal.write_manifest(applied)
        removed = self._journal.prune(applied)
        emit_event(
            "snapshot_finished",
            group=self.name or "group", slot=applied, bytes=len(blob),
        )
        emit_event(
            "wal_compacted",
            group=self.name or "group",
            covered_slot=applied,
            removed=len(removed),
            bytes=self._journal.status()["total_bytes"],
        )
        return applied

    def journal_status(self) -> dict[str, Any] | None:
        """Journal directory status for the ``cli wal`` subcommand."""
        if self._journal is None:
            return None
        st = self._journal.status()
        st["journal_slot"] = self._journal_slot
        st["replayed"] = self.journal_replayed
        return st

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def quiesce(self, timeout: float = 30.0) -> None:
        """Return once every live replica has applied every sequenced command.

        Implemented as an in-band no-op query per replica: the answer can
        only arrive after everything ahead of it on the FIFO has applied.
        A replica crashing mid-iteration is skipped, not an error.
        """
        for i in self.live_replicas():
            try:
                self.query(i, "applied", timeout=timeout)
            except TimeoutError_:
                if self.alive[i]:
                    raise  # a genuine stall, not a crash race

    def fingerprints(self) -> list[int]:
        """Stable-state fingerprints of all live replicas.

        Tolerates a replica crashing mid-iteration: its fingerprint is
        simply omitted (it is no longer part of the live set).
        """
        prints: list[int] = []
        for i in self.live_replicas():
            try:
                prints.append(self.query(i, "fingerprint"))
            except TimeoutError_:
                if self.alive[i]:
                    raise
        return prints

    def converged(self) -> bool:
        return len(set(self.fingerprints())) <= 1

    def space_size(self, handle: TSHandle) -> int:
        for i in self.live_replicas():
            try:
                return self.query(i, "space_size", handle)
            except TimeoutError_:
                if self.alive[i]:
                    raise  # crashed mid-query: ask the next live replica
        raise TimeoutError_("all replicas have crashed")

    def metrics_snapshot(self) -> dict[str, Any]:
        # Backpressure gauges are *sampled* here, at snapshot time — the
        # hot path never touches them.  Queue sizes are approximate by
        # nature (qsize races the consumers); that is fine for a gauge.
        with self._pending_lock:
            self._g_seq_depth.set(len(self._pending))
        self._g_read_depth.set(len(self._read_pending))
        depth = getattr(self.transport, "depth", None)
        if depth is not None:
            self._g_apply_depth.set(
                max((depth(i) for i in self.live_replicas()), default=0)
            )
        return self.metrics.snapshot()

    # ------------------------------------------------------------------ #
    # continuous profiling
    # ------------------------------------------------------------------ #

    def start_profiling(
        self, hz: float = DEFAULT_HZ, *, local_sampler: bool = True
    ) -> None:
        """Begin sampling this group's threads (and replica processes).

        On per-process-worker transports each live replica starts its own
        sampler, driven by an in-band ``profile_start`` query; on
        in-process transports the local sampler already sees the replica
        threads.  ``local_sampler=False`` lets a :class:`ShardedGroup`
        run ONE process-wide sampler itself instead of one per shard.
        Idempotent; strictly opt-in — until called, nothing samples.
        """
        if getattr(self.transport, "per_process_workers", False):
            self._remote_profiling = True
            for i in self.live_replicas():
                try:
                    self.query(i, "profile_start", hz)
                except TimeoutError_:
                    if self.alive[i]:
                        raise  # crashed mid-query: its sampler dies with it
        if local_sampler and self._profiler is None:
            self._profiler = SamplingProfiler(hz=hz).start()

    def stop_profiling(self) -> dict[str, int]:
        """Stop sampling; return the merged folded stacks.

        Remote stacks come back over the incarnation-fenced query lane:
        a replica killed mid-sampling simply contributes nothing (the
        query fails fast on its crash sentinel), and a reincarnated slot
        starts with a fresh sampler — stale stacks can never pollute the
        merge.  When this group is a shard, remote roles are prefixed
        with the shard name so profiles merged across shards stay
        attributable.
        """
        folded: dict[str, int] = {}
        prof = self._profiler
        self._profiler = None
        if prof is not None:
            folded = prof.stop()
        if self._remote_profiling:
            self._remote_profiling = False
            for i in self.live_replicas():
                try:
                    remote = self.query(i, "profile_stop")
                except TimeoutError_:
                    if self.alive[i]:
                        raise
                    continue  # crashed while sampling: keep the survivors
                if isinstance(remote, dict) and remote:
                    if self.name:
                        remote = {
                            f"{self.name}/{stack}": n
                            for stack, n in remote.items()
                        }
                    folded = merge_folded(folded, remote)
        return folded

    def introspection_snapshot(self, backend: str = "ReplicaGroup") -> dict[str, Any]:
        """Merged live-state image: one replica's SM view + group health.

        The state-machine image (spaces, waiters, last-out ages) comes
        from the lowest-numbered live replica via the in-band query path,
        so it reflects everything sequenced before the call.  Per-replica
        applied counts give queue lag; the pending deque gives sequencer
        depth.
        """
        from repro.obs.inspect import empty_snapshot

        snap = empty_snapshot(backend)
        applied: dict[int, int | None] = {}
        for i in range(self.n_replicas):
            try:
                applied[i] = self.query(i, "applied") if self.alive[i] else None
            except TimeoutError_:
                applied[i] = None  # crashed mid-query
        live_counts = [a for a in applied.values() if a is not None]
        head = max(live_counts) if live_counts else 0
        snap["replicas"] = [
            {
                "id": i,
                "alive": self.alive[i],
                "applied": applied[i],
                "lag": head - applied[i] if applied[i] is not None else None,
            }
            for i in range(self.n_replicas)
        ]
        live = self.live_replicas()
        if live:
            try:
                snap["sm"] = self.query(live[0], "introspect")
            except TimeoutError_:
                if self.alive[live[0]]:
                    raise
        with self._pending_lock:
            snap["pending"] = len(self._pending)
        return snap

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._profiler is not None:
            # local only: the replica processes are about to be stopped,
            # and querying them for stacks during teardown could stall
            self._profiler.stop()
            self._profiler = None
        if self._monitor_thread is not None:
            self._monitor_stop.set()
            self._monitor_thread.join(timeout=5.0)
        if self._seq_thread is not None:
            self._kick.set()
            self._seq_thread.join(timeout=5.0)
        if self._read_thread is not None:
            self._read_kick.set()
            self._read_thread.join(timeout=5.0)
        self.transport.shutdown(self.alive)
        if self._journal is not None:
            self._journal.close()
