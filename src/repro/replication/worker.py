"""The replica apply loop — one implementation for every transport.

A replica worker owns a private :class:`~repro.core.statemachine.
TSStateMachine` and consumes *items* from its transport in FIFO (= total)
order.  The item protocol is deliberately tiny and value-typed so it can
cross a pickling boundary unchanged:

received                              meaning
------------------------------------  ------------------------------------
``("BATCH", [cmd, ...])``             apply each command, in order; with
                                      stage attribution on, the sequencer
                                      appends its broadcast stamp —
                                      ``("BATCH", cmds, t_send)`` — and
                                      the replica answers with a STAGES
                                      emission (below)
``("BLOB", bytes)``                   a pickled BATCH, marshalled once by
                                      the sequencer and shared by every
                                      replica (the batching optimization)
``("QUERY", qid, what, arg)``         in-band state query; answered after
                                      everything sequenced before it.
                                      ``profile_start``/``profile_stop``
                                      drive this process's sampling
                                      profiler: the answers (and the
                                      folded stacks) ride the same
                                      incarnation-fenced feedback lane as
                                      completions, so a replica killed
                                      mid-sampling cannot pollute the
                                      merged profile
``("READS", [(floor, cmd), ...])``    read fast path: evaluate each
                                      read-only ExecuteAGS on local state
                                      once ``applied >= floor`` (parked
                                      until then), mutating nothing; the
                                      group's read flusher batches many
                                      reads into one item, mirroring the
                                      write lane's batch amortization
``("SNAPSHOT", qid)``                 emit a state-transfer snapshot
``("INSTALL", qid, snap, applied)``   replace state with a snapshot
``("XFER_BEGIN", qid, chunk_bytes)``  chunked state transfer, donor side:
                                      pickle ``(snapshot, applied)`` once,
                                      cache it split into *chunk_bytes*
                                      pieces keyed by this qid (the
                                      transfer id), answer the descriptor
                                      ``("xfer", xid, n_chunks, n_bytes,
                                      applied)``
``("XFER_CHUNK", qid, xid, idx)``     answer one cached chunk (or None if
                                      the transfer id is unknown — the
                                      group treats that as a lost donor)
``("XFER_END", xid)``                 drop the cached transfer
``("INSTALL_CHUNK", xid, idx, n,      chunked install, receiver side:
  chunk)``                            buffer chunk *idx* of *n*
``("INSTALL_DONE", qid, xid, n)``     reassemble the buffered chunks,
                                      install the decoded snapshot,
                                      answer ``"installed"`` (or
                                      ``("incomplete", missing)`` if any
                                      chunk never arrived)
``("PING",)``                         liveness probe; answer immediately
                                      with ``("PONG", applied)`` — an
                                      in-band heartbeat, so a wedged or
                                      dead apply loop stops answering
``("SLEEP", seconds)``                chaos injection: stall this replica's
                                      delivery lane for *seconds*
``("STOP",)`` / ``None``              exit the loop

emitted
------------------------------------  ------------------------------------
``("COMPS", [(request_id, result),    completions (every replica reports;
  ...])``                             the group deduplicates) — one item
                                      per BATCH applied or per READS batch
                                      that fired, so the reply lane is as
                                      batched as the command lane
``("READMISS", request_id)``          a read whose blocking guard cannot
                                      fire on local state; the group
                                      reroutes it through the total order
``("PONG", applied)``                 heartbeat answer to a PING
``("QUERY", qid, replica_id, ans)``   a query/snapshot/install answer
``("SPANS", [(trace_id, request_id,   apply-span records for the traced
  slot, ts, dur), ...])``             commands of one batch — emitted only
                                      when commands carry trace ids, i.e.
                                      when a flight recorder is attached;
                                      ``slot`` is the replica's applied
                                      count, its coordinate in the total
                                      order (the consistency checker's
                                      input)
``("STAGES", queue_s, apply_s,        stage-attribution answer for one
  t_emit)``                           stamped batch: time it sat in this
                                      replica's inbox, mean apply time per
                                      command, and the emit stamp (the
                                      group turns ``now - t_emit`` into
                                      the wake/reply stage)

In-band queries are the replacement for any separate quiescing protocol:
because they travel on the same FIFO as commands, the answer reflects
exactly the state after every previously sequenced command.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Callable

from repro._errors import CommandFailed
from repro.core.statemachine import Completion, TSStateMachine
from repro.obs.profile import (
    process_profile_start,
    process_profile_stop,
    register_thread,
)

__all__ = ["replica_loop", "run_replica_process"]


def _apply_hardened(sm: TSStateMachine, cmd: Any) -> list[Completion]:
    """Apply *cmd*, converting a raising apply into a failed completion.

    State-machine applies are deterministic, so an exception raised here
    raises identically on every replica — each one independently produces
    the same ``CommandFailed`` completion and the group's dedup collapses
    them, exactly like a successful command.  The poison command consumes
    its slot without forking or wedging the group.
    """
    try:
        return sm.apply(cmd)
    except Exception as exc:  # noqa: BLE001 - deliberate poison barrier
        failure = CommandFailed(
            f"command #{cmd.request_id} failed to apply: "
            f"{type(exc).__name__}: {exc}"
        )
        return [
            Completion(
                cmd.request_id,
                cmd.origin_host,
                getattr(cmd, "process_id", None),
                failure,
            )
        ]


def replica_loop(
    replica_id: int,
    recv: Callable[[], Any],
    emit: Callable[[tuple], None],
    halted: Callable[[], bool] | None = None,
) -> None:
    """Apply items from *recv* until STOP; report through *emit*.

    *halted* supports mid-stream crash injection: once it returns True the
    loop exits before applying anything further, dropping the rest of its
    FIFO on the floor — the fail-stop behaviour the threaded backend's
    crash tests rely on.
    """
    register_thread(f"replica-{replica_id}")
    sm = TSStateMachine()
    applied = 0
    stopped = halted if halted is not None else (lambda: False)
    # Reads parked on a session floor: [(floor, ExecuteAGS)].  Served the
    # moment `applied` catches up — so a client always observes at least
    # everything sequenced before it submitted (read-your-writes), while
    # the read itself never enters the total order.
    pending_reads: list[tuple[int, Any]] = []
    # Chunked state transfer: as donor, pickled snapshots split and cached
    # per transfer id; as receiver, chunks buffered until INSTALL_DONE.
    xfer_out: dict[int, list[bytes]] = {}
    xfer_in: dict[int, dict[int, bytes]] = {}

    def serve_reads(reads: list[tuple[int, Any]]) -> None:
        comps: list[tuple[int, Any]] = []
        for _floor, cmd in reads:
            result = sm.try_read(cmd.ags, cmd.process_id)
            if result is None:
                emit(("READMISS", cmd.request_id))
            else:
                comps.append((cmd.request_id, result))
        if comps:
            emit(("COMPS", comps))

    def drain_reads() -> None:
        ready = [r for r in pending_reads if r[0] <= applied]
        if ready:
            pending_reads[:] = [r for r in pending_reads if r[0] > applied]
            serve_reads(ready)

    while True:
        if stopped():
            return
        item = recv()
        if item is None:
            return
        kind = item[0]
        if kind == "STOP":
            return
        if kind == "BLOB":
            item = pickle.loads(item[1])
            kind = item[0]
        if kind == "BATCH":
            # A third element is the sequencer's broadcast stamp: stage
            # attribution is on and this batch owes a STAGES answer.  The
            # stamp is CLOCK_MONOTONIC — system-wide on Linux, so it
            # subtracts cleanly even across the process boundary.
            t_send = item[2] if len(item) > 2 else None
            t_dequeue = time.monotonic() if t_send is not None else 0.0
            spans: list[tuple] | None = None
            # Completions for the whole batch travel as one COMPS item:
            # with process transports every emitted item is a pickled queue
            # message, so per-command COMP replies would make the reply
            # lane as chatty as the unbatched command lane the BLOB
            # optimization already removed.
            comps: list[tuple[int, Any]] = []
            for cmd in item[1]:
                if stopped():
                    return
                trace_id = cmd.trace_id
                if trace_id is None:
                    completions = _apply_hardened(sm, cmd)
                    applied += 1
                else:
                    # traced: time the apply and record this replica's
                    # (slot, request_id) coordinate in the total order
                    t0 = time.monotonic()
                    completions = _apply_hardened(sm, cmd)
                    applied += 1
                    if spans is None:
                        spans = []
                    spans.append(
                        (trace_id, cmd.request_id, applied,
                         t0, time.monotonic() - t0)
                    )
                comps.extend((c.request_id, c.result) for c in completions)
            if comps:
                emit(("COMPS", comps))
            if spans is not None:
                emit(("SPANS", spans))
            if t_send is not None:
                now = time.monotonic()
                emit(
                    ("STAGES",
                     t_dequeue - t_send,
                     (now - t_dequeue) / max(1, len(item[1])),
                     now)
                )
            drain_reads()
        elif kind == "READS":
            ready = [r for r in item[1] if r[0] <= applied]
            pending_reads.extend(r for r in item[1] if r[0] > applied)
            serve_reads(ready)
        elif kind == "PING":
            emit(("PONG", applied))
        elif kind == "SLEEP":
            time.sleep(item[1])
        elif kind == "QUERY":
            _k, qid, what, arg = item
            if what == "fingerprint":
                answer: Any = sm.fingerprint()
            elif what == "space_size":
                answer = len(sm.registry.store(arg))
            elif what == "space_tuples":
                answer = [t.fields for t in sm.registry.store(arg).to_list()]
            elif what == "applied":
                answer = applied
            elif what == "blocked":
                answer = len(sm.blocked)
            elif what == "introspect":
                answer = sm.introspection()
            elif what == "profile_start":
                answer = process_profile_start(arg)
            elif what == "profile_stop":
                answer = process_profile_stop()
            else:
                answer = None
            emit(("QUERY", qid, replica_id, answer))
        elif kind == "SNAPSHOT":
            emit(("QUERY", item[1], replica_id, (sm.snapshot(), applied)))
        elif kind == "INSTALL":
            _k, qid, snapshot, count = item
            sm = TSStateMachine.from_snapshot(snapshot)
            applied = count
            emit(("QUERY", qid, replica_id, "installed"))
            drain_reads()
        elif kind == "XFER_BEGIN":
            _k, qid, chunk_bytes = item
            blob = pickle.dumps(
                (sm.snapshot(), applied), protocol=pickle.HIGHEST_PROTOCOL
            )
            n = max(1, int(chunk_bytes))
            chunks = [blob[i : i + n] for i in range(0, len(blob), n)] or [b""]
            xfer_out[qid] = chunks
            emit(
                ("QUERY", qid, replica_id,
                 ("xfer", qid, len(chunks), len(blob), applied))
            )
        elif kind == "XFER_CHUNK":
            _k, qid, xid, idx = item
            chunks = xfer_out.get(xid)
            answer = (
                chunks[idx]
                if chunks is not None and 0 <= idx < len(chunks)
                else None
            )
            emit(("QUERY", qid, replica_id, answer))
        elif kind == "XFER_END":
            xfer_out.pop(item[1], None)
        elif kind == "INSTALL_CHUNK":
            _k, xid, idx, _total, chunk = item
            xfer_in.setdefault(xid, {})[idx] = chunk
        elif kind == "INSTALL_DONE":
            _k, qid, xid, total = item
            got = xfer_in.pop(xid, {})
            missing = [i for i in range(total) if i not in got]
            if missing:
                # chunks lost (e.g. this replica restarted mid-install):
                # refuse rather than install a torn snapshot
                emit(("QUERY", qid, replica_id, ("incomplete", missing)))
            else:
                snapshot, count = pickle.loads(
                    b"".join(got[i] for i in range(total))
                )
                sm = TSStateMachine.from_snapshot(snapshot)
                applied = count
                emit(("QUERY", qid, replica_id, "installed"))
                drain_reads()


def run_replica_process(replica_id: int, cmd_q: Any, result_q: Any) -> None:
    """Process entry point for the pickling-queue transport (spawn-safe)."""
    replica_loop(replica_id, cmd_q.get, result_q.put)
