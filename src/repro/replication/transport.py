"""Transports: how ordered items reach replica workers.

A :class:`Transport` is the only thing a new backend has to provide.  It
moves opaque *items* (see :mod:`repro.replication.worker` for the item
protocol) to N replica workers — preserving, per replica, the order in
which the sequencer handed them over — and funnels whatever the workers
emit back into a single sink callable.  Everything stateful about
replication (sequencing, parking, dedup, membership bookkeeping) lives in
:class:`~repro.replication.group.ReplicaGroup`, NOT here; a transport is
pure plumbing.

Two implementations ship with the library:

- :class:`InMemoryTransport` — one FIFO + applier thread per replica, the
  substrate of :class:`~repro.parallel.threaded.ThreadedReplicaRuntime`;
- :class:`PickleQueueTransport` — one spawned OS process per replica with
  pickling queues (the same marshalling commands would get on a wire),
  the substrate of :class:`~repro.parallel.multiproc.MultiprocessRuntime`.
  Its ``broadcast`` pickles a batch ONCE and ships the blob to every
  replica, instead of letting each queue re-marshal the same commands —
  the amortization that makes batching measurably faster.

A future asyncio or socket backend is a third class in this file (or a
user module) and nothing else.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue
import threading
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from repro.replication.worker import replica_loop, run_replica_process

__all__ = ["InMemoryTransport", "PickleQueueTransport", "Transport"]

#: What a transport calls with every item a worker emits: (replica_id, item).
Sink = Callable[[int, tuple], None]


@runtime_checkable
class Transport(Protocol):
    """The seam between the ReplicaGroup core and a delivery mechanism."""

    n_replicas: int
    #: True when restart_replica / SNAPSHOT / INSTALL round-trips work.
    supports_recovery: bool
    #: True when replica workers run in their own OS processes — the
    #: profiler then starts a per-process sampler in each worker via the
    #: in-band query lane instead of relying on one in-process sampler
    #: seeing every thread.  Read with getattr(..., False) so third-party
    #: transports that predate the flag default to in-process sampling.
    per_process_workers: bool

    def start(self, sink: Sink) -> None:
        """Launch the replica workers; deliver their emissions to *sink*."""
        ...

    def send(self, replica_id: int, item: tuple) -> None:
        """Enqueue one item on a single replica's FIFO (in-band)."""
        ...

    def broadcast(self, item: tuple, alive: Sequence[bool]) -> Any:
        """Enqueue *item* on every live replica's FIFO.

        Called with the sequencer lock held: the order of broadcast calls
        IS the total order, and the transport must preserve it per FIFO.
        May return transport-specific delivery info (e.g. the marshalled
        size in bytes) — the replica group attaches it to the batch's
        ``broadcast`` span when tracing is enabled, and ignores it
        otherwise.
        """
        ...

    def stop_replica(self, replica_id: int) -> None:
        """Halt one replica mid-stream (crash injection)."""
        ...

    def restart_replica(self, replica_id: int) -> None:
        """Replace a stopped replica with a fresh, empty worker."""
        ...

    def probe(self, replica_id: int) -> bool:
        """Liveness probe: is the worker's execution vehicle still alive?

        ``Process.is_alive()`` for process transports, thread aliveness
        for in-memory ones.  This is the *non-cooperative* half of failure
        detection — a SIGKILLed process fails the probe even though it can
        no longer say anything on the feedback lane.
        """
        ...

    def depth(self, replica_id: int) -> int:
        """Best-effort count of items queued on one replica's FIFO.

        A backpressure gauge, sampled only when a metrics snapshot is
        taken — never on the hot path.  Queue sizes are approximate by
        nature (``qsize`` races with the consumer); 0 for transports
        that cannot say.
        """
        ...

    def shutdown(self, alive: Sequence[bool]) -> None:
        """Stop all workers and reap transport resources."""
        ...


class InMemoryTransport:
    """Per-replica FIFO + daemon applier thread, all in one process.

    Every replica slot carries an *incarnation* number, bumped on each
    stop: a worker thread's emissions are fenced by the incarnation it was
    started under, so anything a stopped (or stopping) thread still says
    can never be attributed to a reincarnated replica in the same slot.
    """

    supports_recovery = True
    per_process_workers = False

    def __init__(self, n_replicas: int):
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.n_replicas = n_replicas
        self._fifos: list["queue.Queue[tuple | None]"] = [
            queue.Queue() for _ in range(n_replicas)
        ]
        self._halted = [threading.Event() for _ in range(n_replicas)]
        self._threads: list[threading.Thread | None] = [None] * n_replicas
        self._incarnations = [0] * n_replicas
        self._sink: Sink | None = None

    def start(self, sink: Sink) -> None:
        self._sink = sink
        for i in range(self.n_replicas):
            self._spawn_worker(i)

    def _spawn_worker(self, replica_id: int) -> None:
        incarnation = self._incarnations[replica_id]
        t = threading.Thread(
            target=replica_loop,
            args=(
                replica_id,
                self._fifos[replica_id].get,
                lambda item, i=replica_id, inc=incarnation: self._deliver(
                    i, inc, item
                ),
                self._halted[replica_id].is_set,
            ),
            name=f"replica-{replica_id}.{incarnation}",
            daemon=True,
        )
        self._threads[replica_id] = t
        t.start()

    def _deliver(self, replica_id: int, incarnation: int, item: tuple) -> None:
        if self._incarnations[replica_id] != incarnation:
            return  # a stale worker: the slot has been reincarnated since
        sink = self._sink
        if sink is not None:
            sink(replica_id, item)

    def send(self, replica_id: int, item: tuple) -> None:
        self._fifos[replica_id].put(item)

    def broadcast(self, item: tuple, alive: Sequence[bool]) -> None:
        for i, fifo in enumerate(self._fifos):
            if alive[i]:
                fifo.put(item)
        return None

    def stop_replica(self, replica_id: int) -> None:
        # fence first, so nothing the dying worker still emits gets
        # through; the halt flag drops anything still queued (mid-stream
        # crash); the STOP sentinel wakes a worker blocked on an empty FIFO
        self._incarnations[replica_id] += 1
        self._halted[replica_id].set()
        self._fifos[replica_id].put(("STOP",))

    def restart_replica(self, replica_id: int) -> None:
        # fresh FIFO and halt flag: the old ones belong to the dead
        # incarnation (its FIFO may hold undelivered batches that must not
        # reach the blank restarted state machine)
        self._fifos[replica_id] = queue.Queue()
        self._halted[replica_id] = threading.Event()
        self._spawn_worker(replica_id)

    def probe(self, replica_id: int) -> bool:
        t = self._threads[replica_id]
        return (
            t is not None
            and t.is_alive()
            and not self._halted[replica_id].is_set()
        )

    def depth(self, replica_id: int) -> int:
        try:
            return self._fifos[replica_id].qsize()
        except Exception:
            return 0

    def shutdown(self, alive: Sequence[bool]) -> None:
        for i in range(self.n_replicas):
            self.stop_replica(i)


class PickleQueueTransport:
    """One spawned OS process per replica, connected by pickling queues.

    ``spawn`` is the default start method: the parent is multi-threaded
    (clients, collectors), and forking a multi-threaded process can
    capture another thread's held queue lock in the child — a deadlock
    observed under full-suite load before switching.

    One result queue PER replica: a replica SIGKILLed mid-``put`` can
    corrupt its queue's pipe, and with a shared queue that would silently
    strand every other replica's completions.

    Replica slots are fenced by *incarnation*: ``stop_replica`` bumps the
    slot's incarnation, and both the collector loop and final delivery
    check it — a feedback item from the dead child (still sitting in the
    poisoned result queue, or mid-read by the stale collector) can never
    be attributed to the reincarnated replica that reuses the slot.
    """

    supports_recovery = True
    per_process_workers = True

    def __init__(self, n_replicas: int, *, start_method: str = "spawn"):
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.n_replicas = n_replicas
        self._ctx = mp.get_context(start_method)
        self.cmd_queues = [self._ctx.Queue() for _ in range(n_replicas)]
        self.result_qs = [self._ctx.Queue() for _ in range(n_replicas)]
        self.processes: list[Any] = []
        self._collectors: list[threading.Thread] = []
        self._incarnations = [0] * n_replicas
        self._running = False
        self._sink: Sink | None = None

    def start(self, sink: Sink) -> None:
        self._sink = sink
        self._running = True
        self.processes = [
            self._ctx.Process(
                target=run_replica_process,
                args=(i, self.cmd_queues[i], self.result_qs[i]),
                daemon=True,
            )
            for i in range(self.n_replicas)
        ]
        for p in self.processes:
            p.start()
        for i in range(self.n_replicas):
            self._start_collector(i)

    def _start_collector(self, replica_id: int) -> None:
        t = threading.Thread(
            target=self._collect,
            args=(
                replica_id,
                self.result_qs[replica_id],
                self._incarnations[replica_id],
            ),
            name=f"mp-collector-{replica_id}.{self._incarnations[replica_id]}",
            daemon=True,
        )
        self._collectors.append(t)
        t.start()

    def _collect(self, replica_id: int, result_q: Any, incarnation: int) -> None:
        # bind the queue AND incarnation at thread start: restart_replica
        # swaps the slot in self.result_qs, and the stale collector must
        # neither steal from the new queue nor deliver from the old one
        while self._running and self._incarnations[replica_id] == incarnation:
            try:
                item = result_q.get(timeout=0.2)
            except Exception:
                continue
            self._deliver(replica_id, incarnation, item)

    def _deliver(self, replica_id: int, incarnation: int, item: tuple) -> None:
        """Forward *item* to the sink unless its incarnation is stale.

        The final fence: even an item already pulled off the dead child's
        result queue is dropped here once ``stop_replica`` has bumped the
        slot, so it cannot be attributed to the reincarnated replica.
        """
        if self._incarnations[replica_id] != incarnation:
            return
        sink = self._sink
        if sink is not None:
            sink(replica_id, item)

    def send(self, replica_id: int, item: tuple) -> None:
        self.cmd_queues[replica_id].put(item)

    def broadcast(self, item: tuple, alive: Sequence[bool]) -> int:
        # marshal once, ship the same blob to every replica: pickling the
        # batch is the dominant per-command cost on this transport
        blob = pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
        wrapped = ("BLOB", blob)
        for i, q in enumerate(self.cmd_queues):
            if alive[i]:
                q.put(wrapped)
        return len(blob)

    def stop_replica(self, replica_id: int) -> None:
        # fence first: once the incarnation is bumped the old collector
        # exits and anything it already pulled is dropped at _deliver
        self._incarnations[replica_id] += 1
        proc = self.processes[replica_id]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=10)

    def restart_replica(self, replica_id: int) -> None:
        # fresh queues: the old ones may be poisoned by the SIGKILL.
        # Retire the dead child's queues explicitly so their feeder
        # threads don't linger; the stale collector's blocked get() raises
        # on the closed queue, is swallowed, and the incarnation check
        # ends its loop.
        for stale in (self.cmd_queues[replica_id], self.result_qs[replica_id]):
            try:
                stale.cancel_join_thread()
                stale.close()
            except Exception:
                pass
        self.cmd_queues[replica_id] = self._ctx.Queue()
        self.result_qs[replica_id] = self._ctx.Queue()
        proc = self._ctx.Process(
            target=run_replica_process,
            args=(replica_id, self.cmd_queues[replica_id], self.result_qs[replica_id]),
            daemon=True,
        )
        proc.start()
        self.processes[replica_id] = proc
        self._start_collector(replica_id)

    def probe(self, replica_id: int) -> bool:
        if not self.processes:
            return True  # not started yet: nothing to suspect
        return bool(self.processes[replica_id].is_alive())

    def depth(self, replica_id: int) -> int:
        # mp.Queue.qsize raises NotImplementedError on some platforms
        # (macOS); treat any failure as "cannot say"
        try:
            return self.cmd_queues[replica_id].qsize()
        except Exception:
            return 0

    def shutdown(self, alive: Sequence[bool]) -> None:
        if not self._running:
            return
        self._running = False
        for i, q in enumerate(self.cmd_queues):
            if alive[i]:
                q.put(("STOP",))
        for p in self.processes:
            p.join(timeout=5)
            if p.is_alive():
                p.kill()
        for t in self._collectors:
            t.join(timeout=5)
