"""Transports: how ordered items reach replica workers.

A :class:`Transport` is the only thing a new backend has to provide.  It
moves opaque *items* (see :mod:`repro.replication.worker` for the item
protocol) to N replica workers — preserving, per replica, the order in
which the sequencer handed them over — and funnels whatever the workers
emit back into a single sink callable.  Everything stateful about
replication (sequencing, parking, dedup, membership bookkeeping) lives in
:class:`~repro.replication.group.ReplicaGroup`, NOT here; a transport is
pure plumbing.

Two implementations ship with the library:

- :class:`InMemoryTransport` — one FIFO + applier thread per replica, the
  substrate of :class:`~repro.parallel.threaded.ThreadedReplicaRuntime`;
- :class:`PickleQueueTransport` — one spawned OS process per replica with
  pickling queues (the same marshalling commands would get on a wire),
  the substrate of :class:`~repro.parallel.multiproc.MultiprocessRuntime`.
  Its ``broadcast`` pickles a batch ONCE and ships the blob to every
  replica, instead of letting each queue re-marshal the same commands —
  the amortization that makes batching measurably faster.

A future asyncio or socket backend is a third class in this file (or a
user module) and nothing else.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue
import threading
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from repro.replication.worker import replica_loop, run_replica_process

__all__ = ["InMemoryTransport", "PickleQueueTransport", "Transport"]

#: What a transport calls with every item a worker emits: (replica_id, item).
Sink = Callable[[int, tuple], None]


@runtime_checkable
class Transport(Protocol):
    """The seam between the ReplicaGroup core and a delivery mechanism."""

    n_replicas: int
    #: True when restart_replica / SNAPSHOT / INSTALL round-trips work.
    supports_recovery: bool

    def start(self, sink: Sink) -> None:
        """Launch the replica workers; deliver their emissions to *sink*."""
        ...

    def send(self, replica_id: int, item: tuple) -> None:
        """Enqueue one item on a single replica's FIFO (in-band)."""
        ...

    def broadcast(self, item: tuple, alive: Sequence[bool]) -> Any:
        """Enqueue *item* on every live replica's FIFO.

        Called with the sequencer lock held: the order of broadcast calls
        IS the total order, and the transport must preserve it per FIFO.
        May return transport-specific delivery info (e.g. the marshalled
        size in bytes) — the replica group attaches it to the batch's
        ``broadcast`` span when tracing is enabled, and ignores it
        otherwise.
        """
        ...

    def stop_replica(self, replica_id: int) -> None:
        """Halt one replica mid-stream (crash injection)."""
        ...

    def restart_replica(self, replica_id: int) -> None:
        """Replace a stopped replica with a fresh, empty worker."""
        ...

    def shutdown(self, alive: Sequence[bool]) -> None:
        """Stop all workers and reap transport resources."""
        ...


class InMemoryTransport:
    """Per-replica FIFO + daemon applier thread, all in one process."""

    supports_recovery = False

    def __init__(self, n_replicas: int):
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.n_replicas = n_replicas
        self._fifos: list["queue.Queue[tuple | None]"] = [
            queue.Queue() for _ in range(n_replicas)
        ]
        self._halted = [threading.Event() for _ in range(n_replicas)]
        self._threads: list[threading.Thread] = []

    def start(self, sink: Sink) -> None:
        for i in range(self.n_replicas):
            t = threading.Thread(
                target=replica_loop,
                args=(
                    i,
                    self._fifos[i].get,
                    lambda item, i=i: sink(i, item),
                    self._halted[i].is_set,
                ),
                name=f"replica-{i}",
                daemon=True,
            )
            self._threads.append(t)
            t.start()

    def send(self, replica_id: int, item: tuple) -> None:
        self._fifos[replica_id].put(item)

    def broadcast(self, item: tuple, alive: Sequence[bool]) -> None:
        for i, fifo in enumerate(self._fifos):
            if alive[i]:
                fifo.put(item)
        return None

    def stop_replica(self, replica_id: int) -> None:
        # the halt flag drops anything still queued (mid-stream crash); the
        # STOP sentinel wakes a worker blocked on an empty FIFO
        self._halted[replica_id].set()
        self._fifos[replica_id].put(("STOP",))

    def restart_replica(self, replica_id: int) -> None:
        raise NotImplementedError("in-memory transport has no replica restart")

    def shutdown(self, alive: Sequence[bool]) -> None:
        for i in range(self.n_replicas):
            self.stop_replica(i)


class PickleQueueTransport:
    """One spawned OS process per replica, connected by pickling queues.

    ``spawn`` is the default start method: the parent is multi-threaded
    (clients, collectors), and forking a multi-threaded process can
    capture another thread's held queue lock in the child — a deadlock
    observed under full-suite load before switching.

    One result queue PER replica: a replica SIGKILLed mid-``put`` can
    corrupt its queue's pipe, and with a shared queue that would silently
    strand every other replica's completions.
    """

    supports_recovery = True

    def __init__(self, n_replicas: int, *, start_method: str = "spawn"):
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.n_replicas = n_replicas
        self._ctx = mp.get_context(start_method)
        self.cmd_queues = [self._ctx.Queue() for _ in range(n_replicas)]
        self.result_qs = [self._ctx.Queue() for _ in range(n_replicas)]
        self.processes: list[Any] = []
        self._collectors: list[threading.Thread] = []
        self._collecting = [True] * n_replicas
        self._running = False
        self._sink: Sink | None = None

    def start(self, sink: Sink) -> None:
        self._sink = sink
        self._running = True
        self.processes = [
            self._ctx.Process(
                target=run_replica_process,
                args=(i, self.cmd_queues[i], self.result_qs[i]),
                daemon=True,
            )
            for i in range(self.n_replicas)
        ]
        for p in self.processes:
            p.start()
        for i in range(self.n_replicas):
            self._start_collector(i)

    def _start_collector(self, replica_id: int) -> None:
        t = threading.Thread(
            target=self._collect,
            args=(replica_id, self.result_qs[replica_id]),
            name=f"mp-collector-{replica_id}",
            daemon=True,
        )
        self._collectors.append(t)
        t.start()

    def _collect(self, replica_id: int, result_q: Any) -> None:
        # bind the queue at thread start: restart_replica swaps the slot in
        # self.result_qs, and the stale collector must not steal from it
        while self._running and self._collecting[replica_id]:
            try:
                item = result_q.get(timeout=0.2)
            except Exception:
                continue
            assert self._sink is not None
            self._sink(replica_id, item)

    def send(self, replica_id: int, item: tuple) -> None:
        self.cmd_queues[replica_id].put(item)

    def broadcast(self, item: tuple, alive: Sequence[bool]) -> int:
        # marshal once, ship the same blob to every replica: pickling the
        # batch is the dominant per-command cost on this transport
        blob = pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
        wrapped = ("BLOB", blob)
        for i, q in enumerate(self.cmd_queues):
            if alive[i]:
                q.put(wrapped)
        return len(blob)

    def stop_replica(self, replica_id: int) -> None:
        self._collecting[replica_id] = False
        proc = self.processes[replica_id]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=10)

    def restart_replica(self, replica_id: int) -> None:
        # fresh queues: the old ones may be poisoned by the SIGKILL
        self.cmd_queues[replica_id] = self._ctx.Queue()
        self.result_qs[replica_id] = self._ctx.Queue()
        proc = self._ctx.Process(
            target=run_replica_process,
            args=(replica_id, self.cmd_queues[replica_id], self.result_qs[replica_id]),
            daemon=True,
        )
        proc.start()
        self.processes[replica_id] = proc
        self._collecting[replica_id] = True
        self._start_collector(replica_id)

    def shutdown(self, alive: Sequence[bool]) -> None:
        if not self._running:
            return
        self._running = False
        for i, q in enumerate(self.cmd_queues):
            if alive[i]:
                q.put(("STOP",))
        for p in self.processes:
            p.join(timeout=5)
            if p.is_alive():
                p.kill()
        for t in self._collectors:
            t.join(timeout=5)
