"""Tokenizer for the FT-lcc statement language.

Hand-rolled single-pass lexer with line/column tracking so parse errors
point at the offending character.  Token kinds:

``NAME`` identifiers/keywords, ``INT``, ``FLOAT``, ``STRING`` (double
quotes, with escapes), ``QMARK`` (``?``), punctuation (``< > ( ) , ; :``),
operators (``+ - * / % // == != <= >= < >``) and ``ARROW`` (``=>``).

``<`` and ``>`` are both statement brackets and comparison operators; the
parser disambiguates by context, the lexer just reports ``LANGLE`` /
``RANGLE``.
"""

from __future__ import annotations

from typing import Iterator

from repro._errors import CompileError

__all__ = ["Token", "tokenize"]

_PUNCT = {
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ";": "SEMI",
    ":": "COLON",
    "?": "QMARK",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
    "%": "PERCENT",
}

_KEYWORDS = {"or", "true", "false"}


class Token:
    """A lexeme with its kind, value and source position."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: object, line: int, column: int):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r} @{self.line}:{self.column})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Token)
            and other.kind == self.kind
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.value))


def tokenize(src: str) -> list[Token]:
    """Lex *src* into tokens (excluding whitespace and ``#`` comments)."""
    return list(_scan(src))


def _scan(src: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(src)

    def err(msg: str) -> CompileError:
        return CompileError(msg, line, col)

    while i < n:
        ch = src[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":  # comment to end of line
            while i < n and src[i] != "\n":
                i += 1
            continue
        start_col = col
        # multi-char operators first
        two = src[i : i + 2]
        if two == "=>":
            yield Token("ARROW", "=>", line, start_col)
            i += 2
            col += 2
            continue
        if two in ("==", "!=", "<=", ">=", "//"):
            kind = {"==": "EQ", "!=": "NE", "<=": "LE", ">=": "GE", "//": "DSLASH"}[two]
            yield Token(kind, two, line, start_col)
            i += 2
            col += 2
            continue
        if ch == "<":
            yield Token("LANGLE", "<", line, start_col)
            i += 1
            col += 1
            continue
        if ch == ">":
            yield Token("RANGLE", ">", line, start_col)
            i += 1
            col += 1
            continue
        if ch == "/":
            yield Token("SLASH", "/", line, start_col)
            i += 1
            col += 1
            continue
        if ch in _PUNCT:
            yield Token(_PUNCT[ch], ch, line, start_col)
            i += 1
            col += 1
            continue
        if ch == '"':
            j = i + 1
            buf: list[str] = []
            while j < n and src[j] != '"':
                if src[j] == "\\":
                    if j + 1 >= n:
                        raise err("unterminated escape in string literal")
                    esc = src[j + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    j += 2
                elif src[j] == "\n":
                    raise err("newline inside string literal")
                else:
                    buf.append(src[j])
                    j += 1
            if j >= n:
                raise err("unterminated string literal")
            yield Token("STRING", "".join(buf), line, start_col)
            col += j + 1 - i
            i = j + 1
            continue
        # ASCII digits only: str.isdigit() accepts Unicode digits (e.g.
        # superscript one) that int()/float() reject
        if ch in "0123456789":
            j = i
            while j < n and src[j] in "0123456789":
                j += 1
            is_float = False
            if j < n and src[j] == "." and j + 1 < n and src[j + 1] in "0123456789":
                is_float = True
                j += 1
                while j < n and src[j] in "0123456789":
                    j += 1
            text = src[i:j]
            value: object = float(text) if is_float else int(text)
            yield Token("FLOAT" if is_float else "INT", value, line, start_col)
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            name = src[i:j]
            if name in _KEYWORDS:
                yield Token(name.upper(), name, line, start_col)
            else:
                yield Token("NAME", name, line, start_col)
            col += j - i
            i = j
            continue
        raise err(f"unexpected character {ch!r}")
