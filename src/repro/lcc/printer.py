"""Pretty-printer: compiled AGS back to FT-lcc statement text.

The inverse of :func:`repro.lcc.compiler.compile_ags` — useful for
debugging, for logging the statements a runtime executes, and for the
round-trip property tests (``compile(print(ags)) == ags``).

The printer needs a reverse mapping from tuple-space handles to names;
unknown handles print as ``ts#<id>`` and make the output non-compilable
(flagged by :func:`printable`).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.ags import (
    AGS,
    Branch,
    Const,
    Expr,
    FormalRef,
    Guard,
    GuardKind,
    Op,
    Operand,
)
from repro.core.spaces import TSHandle
from repro.core.tuples import Formal, type_name

__all__ = ["print_ags", "printable"]

_BIN = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "truediv": "/",
    "floordiv": "//",
    "mod": "%",
    "eq": "==",
    "ne": "!=",
    "le": "<=",
    "ge": ">=",
    "lt": "<",
    "gt": ">",
}

#: precedence levels for parenthesization (higher binds tighter)
_PREC = {
    "==": 1, "!=": 1, "<=": 1, ">=": 1, "<": 1, ">": 1,
    "+": 2, "-": 2,
    "*": 3, "/": 3, "//": 3, "%": 3,
}


def print_ags(ags: AGS, names: Mapping[TSHandle, str]) -> str:
    """Render *ags* as FT-lcc statement text.

    *names* maps each handle the statement touches to its source name
    (the inverse of the *spaces* mapping given to ``compile_ags``).
    """
    branches = " or ".join(_branch(b, names) for b in ags.branches)
    return f"< {branches} >"


def printable(ags: AGS, names: Mapping[TSHandle, str]) -> bool:
    """True when every construct in *ags* has a textual form under *names*."""
    try:
        text = print_ags(ags, names)
    except _Unprintable:
        return False
    return "ts#" not in text


class _Unprintable(Exception):
    pass


def _branch(branch: Branch, names: Mapping[TSHandle, str]) -> str:
    guard = (
        "true"
        if branch.guard.kind is GuardKind.TRUE
        else _op(branch.guard.op, names)  # type: ignore[arg-type]
    )
    if not branch.body:
        return guard
    body = "; ".join(_op(op, names) for op in branch.body)
    return f"{guard} => {body}"


def _op(op: Op, names: Mapping[TSHandle, str]) -> str:
    parts = [_ts(op.ts, names)]
    if op.ts2 is not None:
        parts.append(_ts(op.ts2, names))
    for f in op.fields:
        parts.append(_field(f, names))
    return f"{op.code.value}({', '.join(parts)})"


def _ts(operand: Operand, names: Mapping[TSHandle, str]) -> str:
    if isinstance(operand, Const) and isinstance(operand.value, TSHandle):
        name = names.get(operand.value)
        return name if name is not None else f"ts#{operand.value.id}"
    if isinstance(operand, FormalRef):
        return operand.name
    raise _Unprintable(f"tuple-space operand {operand!r}")


def _field(field: Any, names: Mapping[TSHandle, str]) -> str:
    if isinstance(field, Formal):
        t = "" if not field.typed else f":{type_name(field.ftype)}"
        return f"?{field.name or ''}{t}"
    return _expr(field, names, 0)


def _expr(operand: Operand, names: Mapping[TSHandle, str], parent_prec: int) -> str:
    if isinstance(operand, Const):
        return _literal(operand.value, names)
    if isinstance(operand, FormalRef):
        return operand.name
    if isinstance(operand, Expr):
        if operand.fn == "neg":
            inner = _expr(operand.args[0], names, 99)
            return f"-{inner}"
        sym = _BIN.get(operand.fn)
        if sym is not None and len(operand.args) == 2:
            prec = _PREC[sym]
            left = _expr(operand.args[0], names, prec)
            right = _expr(operand.args[1], names, prec + 1)
            text = f"{left} {sym} {right}"
            return f"({text})" if prec < parent_prec else text
        args = ", ".join(_expr(a, names, 0) for a in operand.args)
        return f"{operand.fn}({args})"
    raise _Unprintable(f"operand {operand!r}")


def _literal(value: Any, names: Mapping[TSHandle, str]) -> str:
    if isinstance(value, TSHandle):
        name = names.get(value)
        return name if name is not None else f"ts#{value.id}"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        # negative literals print as unary minus, which the grammar accepts
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    raise _Unprintable(f"literal {value!r} has no textual form")
