"""Recursive-descent parser for the FT-lcc statement language.

Grammar (EBNF; ``{}`` repetition, ``[]`` optional)::

    ags      = "<" branch { "or" branch } ">"
             | branch                       (* bare branch, sugar *)
    branch   = guard [ "=>" body ]
    guard    = "true" | opcall
    body     = opcall { ";" opcall }
    opcall   = NAME "(" arg { "," arg } ")"
    arg      = formal | expr
    formal   = "?" [NAME] [":" NAME]
    expr     = cmp
    cmp      = sum [ ("=="|"!="|"<="|">="|"<"|">") sum ]
    sum      = term { ("+"|"-") term }
    term     = unary { ("*"|"/"|"//"|"%") unary }
    unary    = "-" unary | atom
    atom     = INT | FLOAT | STRING | "true" | "false"
             | NAME "(" [expr {"," expr}] ")"      (* function call *)
             | NAME                                (* bound formal / TS *)
             | "(" expr ")"

Comparison operators inside an *argument* use ``<``/``>`` freely: the
parser only treats ``<``/``>`` as statement brackets at statement level,
where an operation name or ``true``/``or`` must follow.
"""

from __future__ import annotations

from typing import Sequence

from repro._errors import CompileError
from repro.lcc.ast_nodes import (
    AGSNode,
    ArgNode,
    BinOpNode,
    BranchNode,
    CallNode,
    FormalNode,
    GuardNode,
    LiteralNode,
    OpNode,
    UnaryNode,
    VarNode,
)
from repro.lcc.lexer import Token, tokenize

__all__ = ["parse_ags"]

#: Operation names recognized in guard/body position.
_OPNAMES = {"out", "in", "rd", "inp", "rdp", "move", "copy"}

_CMP_OPS = {"EQ": "==", "NE": "!=", "LE": "<=", "GE": ">=", "LANGLE": "<", "RANGLE": ">"}


class _Parser:
    def __init__(self, tokens: Sequence[Token], src: str):
        self.tokens = list(tokens)
        self.pos = 0
        self.src = src

    # -- token plumbing --------------------------------------------------- #

    def peek(self, offset: int = 0) -> Token | None:
        i = self.pos + offset
        return self.tokens[i] if i < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise CompileError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.peek()
        if tok is None or tok.kind != kind:
            got = "end of input" if tok is None else f"{tok.value!r}"
            line = tok.line if tok else None
            col = tok.column if tok else None
            raise CompileError(f"expected {kind}, got {got}", line, col)
        self.pos += 1
        return tok

    def accept(self, kind: str) -> Token | None:
        tok = self.peek()
        if tok is not None and tok.kind == kind:
            self.pos += 1
            return tok
        return None

    # -- grammar ----------------------------------------------------------- #

    def parse(self) -> AGSNode:
        bracketed = self.accept("LANGLE") is not None
        first = self.peek()
        line = first.line if first else 1
        col = first.column if first else 1
        branches = [self.branch()]
        while self.accept("OR"):
            branches.append(self.branch())
        if bracketed:
            self.expect("RANGLE")
        extra = self.peek()
        if extra is not None:
            raise CompileError(
                f"trailing input {extra.value!r}", extra.line, extra.column
            )
        return AGSNode(branches, line, col)

    def branch(self) -> BranchNode:
        tok = self.peek()
        if tok is None:
            raise CompileError("expected a guard")
        guard = self.guard()
        body: list[OpNode] = []
        if self.accept("ARROW"):
            body.append(self.opcall())
            while self.accept("SEMI"):
                body.append(self.opcall())
        return BranchNode(guard, body, tok.line, tok.column)

    def guard(self) -> GuardNode:
        tok = self.peek()
        assert tok is not None
        if tok.kind == "TRUE":
            self.next()
            return GuardNode(None, tok.line, tok.column)
        op = self.opcall()
        return GuardNode(op, op.line, op.column)

    def opcall(self) -> OpNode:
        name_tok = self.expect("NAME")
        opname = str(name_tok.value)
        if opname not in _OPNAMES:
            raise CompileError(
                f"unknown operation {opname!r} (expected one of "
                f"{sorted(_OPNAMES)})",
                name_tok.line,
                name_tok.column,
            )
        self.expect("LPAREN")
        args: list[ArgNode] = [self.arg()]
        while self.accept("COMMA"):
            args.append(self.arg())
        self.expect("RPAREN")
        n_ts = 2 if opname in ("move", "copy") else 1
        if len(args) < n_ts + 1:
            raise CompileError(
                f"{opname} needs {n_ts} tuple-space name(s) plus at least "
                "one field",
                name_tok.line,
                name_tok.column,
            )
        return OpNode(opname, args[:n_ts], args[n_ts:], name_tok.line, name_tok.column)

    def arg(self) -> ArgNode:
        if self.peek() is not None and self.peek().kind == "QMARK":  # type: ignore[union-attr]
            return self.formal()
        return self.expr()

    def formal(self) -> FormalNode:
        q = self.expect("QMARK")
        name: str | None = None
        type_name: str | None = None
        tok = self.peek()
        if tok is not None and tok.kind == "NAME":
            name = str(self.next().value)
        if self.accept("COLON"):
            type_name = str(self.expect("NAME").value)
        return FormalNode(name, type_name, q.line, q.column)

    # -- expressions --------------------------------------------------------- #

    def expr(self) -> ArgNode:
        return self.cmp()

    def cmp(self) -> ArgNode:
        left = self.sum()
        tok = self.peek()
        if tok is not None and tok.kind in _CMP_OPS:
            # `<`/`>` are comparisons here only if another operand follows;
            # a `>` closing the statement is left for the caller.
            if tok.kind == "RANGLE" and not self._starts_operand(self.peek(1)):
                return left
            op = _CMP_OPS[self.next().kind]
            right = self.sum()
            return BinOpNode(op, left, right, tok.line, tok.column)
        return left

    @staticmethod
    def _starts_operand(tok: Token | None) -> bool:
        return tok is not None and tok.kind in (
            "INT",
            "FLOAT",
            "STRING",
            "NAME",
            "LPAREN",
            "MINUS",
            "TRUE",
            "FALSE",
        )

    def sum(self) -> ArgNode:
        left = self.term()
        while True:
            tok = self.peek()
            if tok is not None and tok.kind in ("PLUS", "MINUS"):
                self.next()
                right = self.term()
                left = BinOpNode(str(tok.value), left, right, tok.line, tok.column)
            else:
                return left

    def term(self) -> ArgNode:
        left = self.unary()
        while True:
            tok = self.peek()
            if tok is not None and tok.kind in ("STAR", "SLASH", "DSLASH", "PERCENT"):
                self.next()
                right = self.unary()
                left = BinOpNode(str(tok.value), left, right, tok.line, tok.column)
            else:
                return left

    def unary(self) -> ArgNode:
        tok = self.peek()
        if tok is not None and tok.kind == "MINUS":
            self.next()
            operand = self.unary()
            return UnaryNode("-", operand, tok.line, tok.column)
        return self.atom()

    def atom(self) -> ArgNode:
        tok = self.next()
        if tok.kind in ("INT", "FLOAT", "STRING"):
            return LiteralNode(tok.value, tok.line, tok.column)
        if tok.kind == "TRUE":
            return LiteralNode(True, tok.line, tok.column)
        if tok.kind == "FALSE":
            return LiteralNode(False, tok.line, tok.column)
        if tok.kind == "NAME":
            if self.peek() is not None and self.peek().kind == "LPAREN":  # type: ignore[union-attr]
                self.next()
                args: list[ArgNode] = []
                if self.peek() is not None and self.peek().kind != "RPAREN":  # type: ignore[union-attr]
                    args.append(self.expr())
                    while self.accept("COMMA"):
                        args.append(self.expr())
                self.expect("RPAREN")
                return CallNode(str(tok.value), args, tok.line, tok.column)
            return VarNode(str(tok.value), tok.line, tok.column)
        if tok.kind == "LPAREN":
            inner = self.expr()
            self.expect("RPAREN")
            return inner
        raise CompileError(
            f"unexpected token {tok.value!r} in expression", tok.line, tok.column
        )


def parse_ags(src: str) -> AGSNode:
    """Parse one atomic guarded statement (with or without ``< >``)."""
    tokens = tokenize(src)
    if not tokens:
        raise CompileError("empty statement")
    return _Parser(tokens, src).parse()
