"""AST of the FT-lcc statement language.

The tree is deliberately close to the runtime representation (the
compiler's job is mostly name/type resolution):

- :class:`AGSNode` / :class:`BranchNode` — the ``< guard => body or … >``
  shape;
- :class:`OpNode` — one ``op(ts, arg, …)`` call;
- argument nodes — :class:`FormalNode` (``?name:type``),
  :class:`LiteralNode`, :class:`VarNode` (a bound formal used as a value),
  :class:`BinOpNode` and :class:`CallNode` (deterministic expressions).

Every node records its source position for error messages.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "AGSNode",
    "ArgNode",
    "BinOpNode",
    "BranchNode",
    "CallNode",
    "FormalNode",
    "GuardNode",
    "LiteralNode",
    "OpNode",
    "UnaryNode",
    "VarNode",
]


class Node:
    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int):
        self.line = line
        self.column = column


class ArgNode(Node):
    """Base of everything that can appear as an operation argument."""


class LiteralNode(ArgNode):
    __slots__ = ("value",)

    def __init__(self, value: object, line: int, column: int):
        super().__init__(line, column)
        self.value = value

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


class VarNode(ArgNode):
    """A name used as a value: a formal bound earlier, or a TS name."""

    __slots__ = ("name",)

    def __init__(self, name: str, line: int, column: int):
        super().__init__(line, column)
        self.name = name

    def __repr__(self) -> str:
        return f"Var({self.name})"


class FormalNode(ArgNode):
    """``?name:type``, ``?name``, or anonymous ``?:type`` / ``?``."""

    __slots__ = ("name", "type_name")

    def __init__(
        self, name: str | None, type_name: str | None, line: int, column: int
    ):
        super().__init__(line, column)
        self.name = name
        self.type_name = type_name

    def __repr__(self) -> str:
        t = f":{self.type_name}" if self.type_name else ""
        return f"?{self.name or ''}{t}"


class BinOpNode(ArgNode):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: ArgNode, right: ArgNode, line: int, column: int):
        super().__init__(line, column)
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnaryNode(ArgNode):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: ArgNode, line: int, column: int):
        super().__init__(line, column)
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:
        return f"({self.op}{self.operand!r})"


class CallNode(ArgNode):
    """``fn(args…)`` — a registered deterministic function application."""

    __slots__ = ("fn", "args")

    def __init__(self, fn: str, args: Sequence[ArgNode], line: int, column: int):
        super().__init__(line, column)
        self.fn = fn
        self.args = list(args)

    def __repr__(self) -> str:
        return f"{self.fn}({', '.join(map(repr, self.args))})"


class OpNode(Node):
    """``opname(ts_name, arg, …)`` — for move/copy, two leading TS names."""

    __slots__ = ("opname", "ts_args", "args")

    def __init__(
        self,
        opname: str,
        ts_args: Sequence[ArgNode],
        args: Sequence[ArgNode],
        line: int,
        column: int,
    ):
        super().__init__(line, column)
        self.opname = opname
        self.ts_args = list(ts_args)
        self.args = list(args)

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.ts_args] + [repr(a) for a in self.args]
        return f"{self.opname}({', '.join(parts)})"


class GuardNode(Node):
    """``true`` or an operation call."""

    __slots__ = ("op",)

    def __init__(self, op: OpNode | None, line: int, column: int):
        super().__init__(line, column)
        self.op = op  # None = true guard

    def __repr__(self) -> str:
        return "true" if self.op is None else repr(self.op)


class BranchNode(Node):
    __slots__ = ("guard", "body")

    def __init__(self, guard: GuardNode, body: Sequence[OpNode], line: int, column: int):
        super().__init__(line, column)
        self.guard = guard
        self.body = list(body)

    def __repr__(self) -> str:
        return f"{self.guard!r} => {self.body!r}"


class AGSNode(Node):
    __slots__ = ("branches",)

    def __init__(self, branches: Sequence[BranchNode], line: int, column: int):
        super().__init__(line, column)
        self.branches = list(branches)

    def __repr__(self) -> str:
        return f"<{' or '.join(map(repr, self.branches))}>"
