"""FT-lcc program mode: whole source units, not single statements.

The real FT-lcc preprocessed entire C programs: it collected every tuple
space the program used, cataloged every pattern signature, and compiled
every embedded AGS into a request block.  This module reproduces that
unit of compilation for a stand-alone source format::

    # worker.ftl — the FT bag-of-tasks worker's statements
    space bag    stable shared
    space prog   stable shared
    space results stable shared

    stmt take =
        < in(bag, "task", ?t) => out(prog, "task", t) >

    stmt finish(t, r) =
        < in(prog, "task", t) => out(results, "result", t, r) >

Declarations:

``space NAME [stable|volatile] [shared|private]``
    Declares a tuple space the program uses.  At :meth:`Program.bind`
    time each declared space is resolved against (or created in) a
    runtime.

``stmt NAME [(param, …)] = <statement>``
    A named statement.  Parameters are *holes*: identifiers that behave
    like pre-bound formals of unknown type and are substituted with
    concrete values at :meth:`Program.statement` time — the analog of the
    C expressions FT-lcc marshalled into a request's operand slots.

The compiler reuses the single-statement front end; parameter holes are
implemented by compiling the statement once per distinct instantiation
(memoized), which also mirrors FT-lcc's per-call-site marshalling.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro._errors import CompileError
from repro.core.ags import AGS
from repro.core.spaces import Resilience, Scope, TSHandle
from repro.lcc.compiler import SignatureCatalog, compile_ags
from repro.lcc.lexer import tokenize

__all__ = ["Program", "SpaceDecl", "StatementDecl", "compile_program"]


class SpaceDecl:
    """A ``space`` declaration."""

    __slots__ = ("name", "resilience", "scope")

    def __init__(self, name: str, resilience: Resilience, scope: Scope):
        self.name = name
        self.resilience = resilience
        self.scope = scope

    def __repr__(self) -> str:
        return f"space {self.name} {self.resilience.value} {self.scope.value}"


class StatementDecl:
    """A ``stmt`` declaration: name, parameter list, statement source."""

    __slots__ = ("name", "params", "source", "line")

    def __init__(self, name: str, params: list[str], source: str, line: int):
        self.name = name
        self.params = params
        self.source = source
        self.line = line

    def __repr__(self) -> str:
        ps = f"({', '.join(self.params)})" if self.params else ""
        return f"stmt {self.name}{ps}"


class Program:
    """A compiled program: declared spaces plus named statements.

    Statements are compiled lazily per parameter instantiation and
    memoized; the :class:`SignatureCatalog` accumulates every pattern
    signature, exactly as FT-lcc's per-program catalog did.
    """

    def __init__(
        self,
        spaces: list[SpaceDecl],
        statements: list[StatementDecl],
    ):
        self.space_decls = {s.name: s for s in spaces}
        self.statement_decls = {s.name: s for s in statements}
        self.catalog = SignatureCatalog()
        self.handles: dict[str, TSHandle] = {}
        self._cache: dict[tuple[str, tuple], AGS] = {}
        self._bound = False

    # ------------------------------------------------------------------ #
    # binding spaces
    # ------------------------------------------------------------------ #

    def bind(
        self,
        runtime: Any,
        *,
        existing: Mapping[str, TSHandle] | None = None,
        owner: int | None = None,
    ) -> "Program":
        """Resolve every declared space against *runtime*.

        Spaces named in *existing* are used as-is (their attributes must
        agree with the declaration); the rest are created.  Returns self
        for chaining.
        """
        existing = dict(existing or {})
        if "main" not in existing and "main" in self.space_decls:
            existing.setdefault("main", runtime.main_ts)
        for name, decl in self.space_decls.items():
            if name in existing:
                handle = existing[name]
                if handle.resilience is not decl.resilience:
                    raise CompileError(
                        f"space {name!r} declared {decl.resilience.value} but "
                        f"bound to a {handle.resilience.value} space"
                    )
                self.handles[name] = handle
            else:
                self.handles[name] = runtime.create_space(
                    name, decl.resilience, decl.scope,
                    owner=owner if decl.scope is Scope.PRIVATE else None,
                )
        # spaces referenced without declaration: main is implicitly known
        self.handles.setdefault("main", runtime.main_ts)
        self._bound = True
        return self

    def bind_handles(self, handles: Mapping[str, TSHandle]) -> "Program":
        """Bind against pre-existing handles only (no runtime calls)."""
        self.handles.update(handles)
        self._bound = True
        return self

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def statement(self, name: str, **params: Any) -> AGS:
        """The compiled AGS for *name*, with parameter holes filled.

        Parameter values must be valid tuple-field values; they are
        spliced in as literals (FT-lcc marshalled call-site expressions
        the same way).
        """
        if not self._bound:
            raise CompileError("program is not bound to tuple spaces yet")
        decl = self.statement_decls.get(name)
        if decl is None:
            raise CompileError(f"no statement named {name!r}")
        missing = [p for p in decl.params if p not in params]
        if missing:
            raise CompileError(
                f"statement {name!r} missing parameters {missing}"
            )
        extra = [p for p in params if p not in decl.params]
        if extra:
            raise CompileError(f"statement {name!r} has no parameters {extra}")
        key = (name, tuple(params[p] for p in decl.params))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        src = _substitute(decl.source, decl.params, params)
        try:
            ags = compile_ags(src, self.handles, self.catalog)
        except CompileError as exc:
            raise CompileError(
                f"in statement {name!r} (declared at line {decl.line}): {exc}"
            ) from None
        self._cache[key] = ags
        return ags

    def names(self) -> list[str]:
        return sorted(self.statement_decls)

    def __contains__(self, name: str) -> bool:
        return name in self.statement_decls


def _substitute(source: str, params: list[str], values: Mapping[str, Any]) -> str:
    """Replace parameter identifiers with literal values.

    Identifier-boundary aware (``t`` never matches inside ``total``) and
    string-literal safe (text inside ``"…"`` is left untouched).
    """
    import re

    from repro.lcc.printer import _literal

    def repl(match: "re.Match[str]") -> str:
        word = match.group(0)
        if word in values:
            return _literal(values[word], {})
        return word

    out: list[str] = []
    parts = re.split(r'("(?:[^"\\]|\\.)*")', source)
    for i, part in enumerate(parts):
        if i % 2 == 1:
            out.append(part)  # inside a string literal
        else:
            out.append(re.sub(r"[A-Za-z_][A-Za-z0-9_]*", repl, part))
    return "".join(out)


def compile_program(source: str) -> Program:
    """Parse a program source into an (unbound) :class:`Program`."""
    spaces: list[SpaceDecl] = []
    statements: list[StatementDecl] = []
    lines = source.split("\n")
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        lineno = i + 1
        if not line or line.startswith("#"):
            i += 1
            continue
        if line.startswith("space "):
            spaces.append(_parse_space(line, lineno))
            i += 1
            continue
        if line.startswith("stmt "):
            decl, consumed = _parse_stmt(lines, i)
            statements.append(decl)
            i += consumed
            continue
        raise CompileError(
            f"expected 'space' or 'stmt' declaration, got {line!r}", lineno, 1
        )
    return Program(spaces, statements)


def _parse_space(line: str, lineno: int) -> SpaceDecl:
    parts = line.split()
    if len(parts) < 2 or len(parts) > 4:
        raise CompileError(
            "space declaration is 'space NAME [stable|volatile] "
            "[shared|private]'",
            lineno,
            1,
        )
    name = parts[1]
    resilience = Resilience.STABLE
    scope = Scope.SHARED
    for word in parts[2:]:
        if word in ("stable", "volatile"):
            resilience = Resilience(word)
        elif word in ("shared", "private"):
            scope = Scope(word)
        else:
            raise CompileError(f"unknown space attribute {word!r}", lineno, 1)
    return SpaceDecl(name, resilience, scope)


def _parse_stmt(lines: list[str], start: int) -> tuple[StatementDecl, int]:
    header = lines[start].strip()
    lineno = start + 1
    eq = header.find("=")
    if eq < 0:
        raise CompileError("stmt declaration needs '='", lineno, 1)
    sig, rest = header[4:eq].strip(), header[eq + 1 :].strip()
    if "(" in sig:
        if not sig.endswith(")"):
            raise CompileError("malformed parameter list", lineno, 1)
        name, plist = sig[:-1].split("(", 1)
        name = name.strip()
        params = [p.strip() for p in plist.split(",") if p.strip()]
    else:
        name, params = sig, []
    if not name.isidentifier():
        raise CompileError(f"bad statement name {name!r}", lineno, 1)
    # the statement body runs until the closing '>' that balances the
    # opening '<' (statements span multiple lines freely)
    body_lines = [rest]
    consumed = 1
    while not _statement_complete("\n".join(body_lines)):
        if start + consumed >= len(lines):
            raise CompileError(
                f"statement {name!r} is not closed", lineno, 1
            )
        body_lines.append(lines[start + consumed])
        consumed += 1
    return StatementDecl(name, params, "\n".join(body_lines).strip(), lineno), consumed


def _statement_complete(text: str) -> bool:
    """Heuristic-free completeness check: try to tokenize and balance.

    A statement is complete when it contains a closing ``>`` for the
    opening ``<`` outside string literals — comparisons never appear at
    top level between them because ``<``/``>`` inside argument lists are
    always within parentheses.
    """
    text = text.strip()
    if not text.startswith("<"):
        # unbracketed single-op statement: complete when parens balance
        try:
            toks = tokenize(text)
        except CompileError:
            return False
        depth = 0
        for t in toks:
            if t.kind == "LPAREN":
                depth += 1
            elif t.kind == "RPAREN":
                depth -= 1
        return bool(toks) and depth == 0
    try:
        toks = tokenize(text)
    except CompileError:
        return False
    depth = 0
    for t in toks:
        if t.kind == "LPAREN":
            depth += 1
        elif t.kind == "RPAREN":
            depth -= 1
        elif t.kind == "RANGLE" and depth == 0:
            return True
    return False
