"""Compiler: FT-lcc AST → the runtime's compiled AGS representation.

Performs what the paper describes FT-lcc doing (Sec. 5.2):

1. **signature cataloging** — every distinct pattern signature used by a
   matching operation is recorded in a :class:`SignatureCatalog` ("an
   ordered list of the types for each distinct pattern … used primarily
   for matching purposes");
2. **request-block generation** — each statement becomes the
   :class:`~repro.core.ags.AGS` opcode/operand structure the runtimes
   marshal into a single multicast message.

Name resolution: identifiers in TS position resolve against the *spaces*
mapping (``{"main": MAIN_TS, …}``) first, then against formals bound
earlier in the branch (dynamic TS handles); identifiers in value position
resolve to bound formals.  Constant subexpressions are folded at compile
time, so replicas never re-evaluate pure-literal arithmetic.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro._errors import AGSError, CompileError
from repro.core.ags import (
    AGS,
    Branch,
    Const,
    Expr,
    FormalRef,
    Guard,
    GuardKind,
    Op,
    OpCode,
    Operand,
)
from repro.core.spaces import TSHandle
from repro.core.tuples import Formal
from repro.lcc.ast_nodes import (
    AGSNode,
    ArgNode,
    BinOpNode,
    BranchNode,
    CallNode,
    FormalNode,
    GuardNode,
    LiteralNode,
    OpNode,
    UnaryNode,
    VarNode,
)
from repro.lcc.parser import parse_ags

__all__ = ["SignatureCatalog", "compile_ags", "compile_op"]

_TYPE_NAMES: dict[str, type] = {
    "int": int,
    "float": float,
    "str": str,
    "string": str,
    "bytes": bytes,
    "bool": bool,
    "tuple": tuple,
    "any": object,
    "ts": TSHandle,
}

_BINOP_FN = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "truediv",
    "//": "floordiv",
    "%": "mod",
    "==": "eq",
    "!=": "ne",
    "<=": "le",
    ">=": "ge",
    "<": "lt",
    ">": "gt",
}

_OPCODES = {
    "out": OpCode.OUT,
    "in": OpCode.IN,
    "rd": OpCode.RD,
    "inp": OpCode.INP,
    "rdp": OpCode.RDP,
    "move": OpCode.MOVE,
    "copy": OpCode.COPY,
}


class SignatureCatalog:
    """FT-lcc's registry of distinct pattern signatures.

    Signatures are numbered in first-use order; the runtime's matching
    index keys on the same signature tuples, so the catalog doubles as a
    cross-check in tests that textual and builder programs agree.
    """

    def __init__(self) -> None:
        self._ids: dict[tuple[str, ...], int] = {}

    def register(self, signature: tuple[str, ...]) -> int:
        """Record *signature*; returns its stable catalog id."""
        if signature not in self._ids:
            self._ids[signature] = len(self._ids)
        return self._ids[signature]

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, signature: tuple[str, ...]) -> bool:
        return signature in self._ids

    def signatures(self) -> list[tuple[str, ...]]:
        """All signatures, in catalog-id order."""
        return sorted(self._ids, key=self._ids.__getitem__)


class _BranchCompiler:
    """Compiles one branch, tracking which formal names are bound."""

    def __init__(self, spaces: Mapping[str, TSHandle], catalog: SignatureCatalog):
        self.spaces = spaces
        self.catalog = catalog
        self.bound: set[str] = set()

    # -- arguments ------------------------------------------------------- #

    def compile_value(self, node: ArgNode) -> Operand:
        """Compile an argument in *value* position (no formals allowed)."""
        if isinstance(node, LiteralNode):
            return Const(node.value)
        if isinstance(node, VarNode):
            if node.name in self.spaces:
                return Const(self.spaces[node.name])
            if node.name in self.bound:
                return FormalRef(node.name)
            raise CompileError(
                f"unknown name {node.name!r} (not a tuple space, not a "
                "formal bound earlier in this branch)",
                node.line,
                node.column,
            )
        if isinstance(node, UnaryNode):
            inner = self.compile_value(node.operand)
            return self._fold(Expr("neg", (inner,)))
        if isinstance(node, BinOpNode):
            fn = _BINOP_FN[node.op]
            left = self.compile_value(node.left)
            right = self.compile_value(node.right)
            return self._fold(Expr(fn, (left, right)))
        if isinstance(node, CallNode):
            args = [self.compile_value(a) for a in node.args]
            try:
                return self._fold(Expr(node.fn, args))
            except AGSError as exc:
                raise CompileError(str(exc), node.line, node.column) from None
        raise CompileError("formals are not valid here", node.line, node.column)

    @staticmethod
    def _fold(expr: Expr) -> Operand:
        """Constant-fold expressions whose arguments are all literals."""
        if all(isinstance(a, Const) for a in expr.args):
            try:
                return Const(expr.evaluate({}))
            except Exception:
                return expr  # runtime error stays a runtime error
        return expr

    def compile_field(self, node: ArgNode) -> Any:
        """Compile a field: a formal or a value operand."""
        if isinstance(node, FormalNode):
            if node.type_name is not None:
                t = _TYPE_NAMES.get(node.type_name)
                if t is None:
                    raise CompileError(
                        f"unknown type {node.type_name!r}", node.line, node.column
                    )
            else:
                t = object
            if node.name is not None:
                if node.name in self.bound:
                    raise CompileError(
                        f"formal {node.name!r} already bound in this branch",
                        node.line,
                        node.column,
                    )
                self.bound.add(node.name)
            return Formal(t, node.name)
        return self.compile_value(node)

    # -- operations -------------------------------------------------------- #

    def compile_ts(self, node: ArgNode) -> Operand:
        operand = self.compile_value(node)
        if isinstance(operand, Const) and not isinstance(operand.value, TSHandle):
            raise CompileError(
                f"{operand.value!r} is not a tuple space", node.line, node.column
            )
        return operand

    def compile_op(self, node: OpNode) -> Op:
        code = _OPCODES[node.opname]
        ts = self.compile_ts(node.ts_args[0])
        ts2 = self.compile_ts(node.ts_args[1]) if len(node.ts_args) > 1 else None
        fields = [self.compile_field(a) for a in node.args]
        try:
            op = Op(code, ts, fields, ts2=ts2)
        except AGSError as exc:
            raise CompileError(str(exc), node.line, node.column) from None
        if code is not OpCode.OUT:
            self.catalog.register(self._signature(fields))
        return op

    @staticmethod
    def _signature(fields: list[Any]) -> tuple[str, ...]:
        sig: list[str] = []
        for f in fields:
            if isinstance(f, Formal):
                sig.append("?" if not f.typed else f.ftype.__name__)
            elif isinstance(f, Const):
                sig.append(type(f.value).__name__)
            else:
                sig.append("*")  # value computed at run time
        return tuple(sig)


def compile_ags(
    src: str,
    spaces: Mapping[str, TSHandle],
    catalog: SignatureCatalog | None = None,
) -> AGS:
    """Compile statement text into an executable :class:`AGS`.

    Parameters
    ----------
    src:
        The statement, e.g. ``'< in(main,"c",?v:int) => out(main,"c",v+1) >'``.
    spaces:
        Name → handle mapping for every tuple space the text mentions.
    catalog:
        Optional :class:`SignatureCatalog` accumulating pattern signatures
        across many compilations (as FT-lcc does per program).
    """
    tree = parse_ags(src)
    if catalog is None:
        catalog = SignatureCatalog()
    return _compile_tree(tree, spaces, catalog)


def _compile_tree(
    tree: AGSNode, spaces: Mapping[str, TSHandle], catalog: SignatureCatalog
) -> AGS:
    branches: list[Branch] = []
    for bnode in tree.branches:
        bc = _BranchCompiler(spaces, catalog)
        gop = bnode.guard.op
        if (
            gop is not None
            and gop.opname in ("out", "move", "copy")
            and not bnode.body
        ):
            # bare `out(...)` / `move(...)` statement: sugar for true => op
            guard = Guard.true()
            body = [bc.compile_op(gop)]
            branches.append(Branch(guard, body))
            continue
        guard = _compile_guard(bc, bnode.guard)
        body = [bc.compile_op(op) for op in bnode.body]
        try:
            branches.append(Branch(guard, body))
        except AGSError as exc:
            raise CompileError(str(exc), bnode.line, bnode.column) from None
    try:
        return AGS(branches)
    except AGSError as exc:
        raise CompileError(str(exc), tree.line, tree.column) from None


def _compile_guard(bc: _BranchCompiler, gnode: GuardNode) -> Guard:
    if gnode.op is None:
        return Guard.true()
    op = bc.compile_op(gnode.op)
    if op.code not in (OpCode.IN, OpCode.RD, OpCode.INP, OpCode.RDP):
        raise CompileError(
            f"{op.code.value} cannot be a guard", gnode.line, gnode.column
        )
    return Guard(GuardKind.OP, op)


def compile_op(src: str, spaces: Mapping[str, TSHandle]) -> Op:
    """Compile a single operation call, e.g. ``'out(main, "x", 1)'``."""
    tree = parse_ags(src)
    if (
        len(tree.branches) != 1
        or tree.branches[0].body
        or tree.branches[0].guard.op is None
    ):
        raise CompileError("expected exactly one operation call")
    bc = _BranchCompiler(spaces, SignatureCatalog())
    return bc.compile_op(tree.branches[0].guard.op)
