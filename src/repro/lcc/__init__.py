"""FT-lcc analog: a textual front end for atomic guarded statements.

The paper's FT-Linda programs are C with embedded tuple-space syntax,
preprocessed by **FT-lcc**, which "analyzes and catalogs the signatures of
all patterns used in TS operations" and compiles each AGS into the
opcode/operand request blocks the runtime multicasts (Sec. 5.2).  This
package reproduces the pipeline for a stand-alone statement language::

    < in(main, "count", ?old:int) => out(main, "count", old + 1) >

compiled by :func:`compile_ags` into exactly the
:class:`~repro.core.ags.AGS` objects the runtimes execute — so everything
written textually behaves identically to the builder API.

Grammar sketch (see :mod:`repro.lcc.parser` for the full one)::

    ags     = "<" branch { "or" branch } ">"
    branch  = guard [ "=>" body ]
    guard   = "true" | opcall
    body    = opcall { ";" opcall }
    opcall  = NAME "(" arg { "," arg } ")"
    arg     = formal | expr
    formal  = "?" [NAME] [":" TYPE]
    expr    = literals, bound formals, + - * / % //, comparisons,
              function calls (registered deterministic functions)
"""

from repro.lcc.compiler import SignatureCatalog, compile_ags, compile_op
from repro.lcc.lexer import Token, tokenize
from repro.lcc.parser import parse_ags
from repro.lcc.printer import print_ags, printable
from repro.lcc.program import Program, compile_program

__all__ = [
    "Program",
    "SignatureCatalog",
    "Token",
    "compile_ags",
    "compile_op",
    "compile_program",
    "parse_ags",
    "print_ags",
    "printable",
    "tokenize",
]
