"""E8 — strong vs weak ``inp``/``rdp`` semantics.

Sec. 6 of the paper: "inp and rdp in our scheme provide absolute
guarantees as to whether there is a matching tuple, a property that we
call strong inp/rdp semantics.  Of all other distributed Linda
implementations of which we are aware, only [4] offers similar semantics."

The experiment: a ground-truth-controlled probe workload where a matching
tuple is *always present*.  The FT-Linda runtime (probes ordered with all
other operations) must never report a false miss; a weak-semantics
runtime (modeling kernels that probe an incomplete or stale view) misses
at its configured rate.  We then show the programmatic consequence: a
termination-detection loop ("no tasks left → stop") built on probes
terminates early exactly as often as the false-miss rate predicts.
"""

from __future__ import annotations

from repro import LocalRuntime, formal
from repro.baselines import PlainLindaRuntime
from repro.bench import Table, save_table

N_PROBES = 2000


def probe_accuracy(runtime, n: int) -> int:
    """Probes against a space that always matches; count false misses."""
    runtime.out(runtime.main_ts, "present", 1)
    misses = 0
    for _ in range(n):
        t = runtime.rdp(runtime.main_ts, "present", formal(int))
        if t is None:
            misses += 1
    return misses


def early_termination_rate(runtime, n_runs: int, tasks_per_run: int) -> int:
    """A probe-driven drain loop: how often does it stop with work left?"""
    early = 0
    for r in range(n_runs):
        for i in range(tasks_per_run):
            runtime.out(runtime.main_ts, "task", r, i)
        drained = 0
        while True:
            t = runtime.inp(runtime.main_ts, "task", r, formal(int))
            if t is None:
                break  # "no tasks left" — is that actually true?
            drained += 1
        if drained < tasks_per_run:
            early += 1
            # clean up what the weak probe abandoned
            while runtime.inp(runtime.main_ts, "task", r, formal(int)) is not None:
                pass
    return early


def test_e8_probe_semantics(benchmark):
    def run():
        table = Table(
            "E8: inp/rdp semantics — false-miss counts over "
            f"{N_PROBES} probes with a match always present",
            ["runtime", "claimed miss rate", "false misses",
             "early terminations /100 drains"],
        )
        strong = LocalRuntime()
        strong_misses = probe_accuracy(strong, N_PROBES)
        strong_early = early_termination_rate(LocalRuntime(), 100, 5)
        table.add("FT-Linda (strong)", "0", strong_misses, strong_early)
        results = {"strong": (strong_misses, strong_early)}
        for rate in (0.02, 0.10):
            weak = PlainLindaRuntime(weak_probe_miss_rate=rate, seed=1)
            misses = probe_accuracy(weak, N_PROBES)
            weak2 = PlainLindaRuntime(weak_probe_miss_rate=rate, seed=2)
            early = early_termination_rate(weak2, 100, 5)
            table.add(f"weak (p={rate})", f"{rate}", misses, early)
            results[rate] = (misses, early)
        table.note(
            "paper: FT-Linda's total order makes a failed probe an absolute "
            "guarantee; weak kernels turn probe-driven idioms flaky"
        )
        save_table(table, "e8_strong_inp")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    strong_misses, strong_early = results["strong"]
    assert strong_misses == 0
    assert strong_early == 0
    m2, e2 = results[0.02]
    m10, e10 = results[0.10]
    assert m2 > 0 and m10 > m2  # weak misses scale with the weak rate
    assert e10 > 0  # and they break termination detection
