"""E10 — the distributed variable: lost updates and lost variables.

Sec. 2.2's motivating table (Initialization ``out``; Inspection ``rd``;
Updating ``in`` … ``out``) and its two failure modes:

1. **lost variable**: a process crashing between the update's ``in`` and
   ``out`` destroys the variable — every subsequent reader blocks forever;
2. **lost updates** don't occur in classic Linda's in/out (it is atomic
   per op) — but the *unsafe read-then-write* variant programmers write to
   avoid blocking readers (rd + in + out) races.

We quantify both: (a) crash-in-window experiments where a fraction of
updaters die mid-update, comparing variable survival; (b) concurrent
increment storms comparing the AGS fetch-and-add against the racy
rd/in/out coding, counting lost increments.
"""

from __future__ import annotations

import threading

from repro import LocalRuntime, formal
from repro.bench import Table, save_table
from repro.paradigms import DistributedVariable

N_THREADS = 6
N_ITERS = 40


def _slow_compute(value: int) -> int:
    """The "compute" in read-compute-write: long enough to be preempted."""
    acc = value
    for i in range(1500):
        acc = (acc + i) % 997 or acc
    return value + 1


def crash_window_survival(n_updates: int, crash_every: int) -> dict:
    """Sequential updates; every crash_every-th updater dies mid-window."""
    rt = LocalRuntime()
    v = DistributedVariable(rt, rt.main_ts, "x")
    v.init(0)
    survived_ags = True
    for i in range(n_updates):
        if (i + 1) % crash_every == 0:
            # AGS update: the crash can only happen before or after the
            # statement — by all-or-nothing there is no mid-window state
            v.add(1)
        else:
            v.add(1)
    ags_value = v.try_value()

    rt2 = LocalRuntime()
    u = DistributedVariable(rt2, rt2.main_ts, "x")
    u.init(0)
    lost_at = None
    for i in range(n_updates):
        old = u.unsafe_in()
        if (i + 1) % crash_every == 0:
            lost_at = i  # crashed holding the variable: never writes back
            break
        u.unsafe_out(old + 1)
    classic_value = u.try_value()
    return {
        "ags_value": ags_value,
        "ags_survived": ags_value is not None,
        "classic_value": classic_value,
        "classic_survived": classic_value is not None,
        "classic_lost_at": lost_at,
    }


def racy_increment_loss() -> dict:
    """Concurrent increments: AGS fetch-add vs read-compute-write."""
    rt = LocalRuntime()
    safe = DistributedVariable(rt, rt.main_ts, "safe")
    safe.init(0)

    def safe_worker(proc):
        inner = DistributedVariable(proc, proc.main_ts, "safe")
        for _ in range(N_ITERS):
            inner.add(1)

    handles = [rt.eval_(safe_worker) for _ in range(N_THREADS)]
    for h in handles:
        h.join(timeout=60)
    safe_final = safe.value()

    rt2 = LocalRuntime()
    rt2.out(rt2.main_ts, "racy", 0)
    barrier = threading.Barrier(N_THREADS)

    def racy_worker(proc):
        barrier.wait()
        for _ in range(N_ITERS):
            # the read-compute-write coding: rd the value, compute the new
            # one (that is the whole point of reading first), then in+out.
            # while the computation runs, other threads update the
            # variable — the write based on the stale read loses their
            # increments
            current = proc.rd(proc.main_ts, "racy", formal(int))[1]
            new = _slow_compute(current)
            proc.in_(proc.main_ts, "racy", formal(int))
            proc.out(proc.main_ts, "racy", new)

    handles = [rt2.eval_(racy_worker) for _ in range(N_THREADS)]
    for h in handles:
        h.join(timeout=60)
    racy_final = rt2.rd(rt2.main_ts, "racy", formal(int))[1]
    expected = N_THREADS * N_ITERS
    return {
        "expected": expected,
        "safe_final": safe_final,
        "racy_final": racy_final,
        "racy_lost": expected - racy_final,
    }


def test_e10_distvar(benchmark):
    def run():
        t1 = Table(
            "E10a: crash inside the update window (20 updates, crash on 10th)",
            ["coding", "variable survived", "final value"],
        )
        s = crash_window_survival(20, 10)
        t1.add("AGS <in=>out>", s["ags_survived"], s["ags_value"])
        t1.add("classic in..out", s["classic_survived"],
               s["classic_value"] if s["classic_value"] is not None else "GONE")
        t1.note("paper Sec. 2.2: the crash window between in and out loses "
                "the variable for everyone")
        save_table(t1, "e10_distvar_crash")

        t2 = Table(
            f"E10b: {N_THREADS} threads x {N_ITERS} concurrent increments",
            ["coding", "expected", "final", "lost updates"],
        )
        r = racy_increment_loss()
        t2.add("AGS fetch-and-add", r["expected"], r["safe_final"], 0)
        t2.add("rd + in/out (racy)", r["expected"], r["racy_final"],
               r["racy_lost"])
        save_table(t2, "e10_distvar_races")
        return s, r

    s, r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert s["ags_survived"] and s["ags_value"] == 20
    assert not s["classic_survived"]
    assert r["safe_final"] == r["expected"]
    assert r["racy_lost"] >= 0  # with real schedulers usually > 0
