"""E9 — fault-tolerant divide and conquer (paper Sec. 4.1).

"Upon withdrawing a subtask tuple, the worker first determines if the
subtask is small enough … If so, the task is performed and the result
tuple deposited"; otherwise it splits.  Our implementation keeps the
pending-count and accumulator updates inside the same AGSs that retire
subtasks, so the final answer is exact no matter which workers crash.

Workload: sum of squares over [0, N) by recursive range splitting.  We
verify the exact result with 0..2 crashed workers and report how much
work was recycled, plus the split/solve statement mix.
"""

from __future__ import annotations

import time

from repro import LocalRuntime
from repro.bench import Table, save_table
from repro.paradigms import run_divide_conquer

N = 256
EXPECTED = sum(i * i for i in range(N))


def run_case(n_workers: int, crashes: dict[int, int] | None) -> dict:
    runtime = LocalRuntime()
    t0 = time.perf_counter()
    report = run_divide_conquer(
        runtime,
        (0, N),
        n_workers=n_workers,
        is_small=lambda t: t[1] - t[0] <= 16,
        solve=lambda t: sum(i * i for i in range(t[0], t[1])),
        split=lambda t: [
            (t[0], (t[0] + t[1]) // 2),
            ((t[0] + t[1]) // 2, t[1]),
        ],
        combine_name="e9_add",
        combine=lambda a, b: a + b,
        identity=0,
        crash_workers=crashes,
    )
    report["wall_ms"] = (time.perf_counter() - t0) * 1000.0
    return report


def test_e9_exact_result_despite_crashes(benchmark):
    def run():
        table = Table(
            f"E9: divide & conquer, sum of squares over [0,{N})",
            ["workers", "crashes", "result", "exact", "leaves solved",
             "recycled"],
        )
        rows = {}
        for workers, crashes in ((3, None), (3, {0: 2}), (4, {0: 1, 1: 3})):
            r = run_case(workers, crashes)
            k = len(crashes or {})
            rows[k] = r
            table.add(workers, k, r["result"], r["result"] == EXPECTED,
                      r["solved"], r["recycled"])
        table.note("paper Sec. 4.1: subtask recycling makes D&C exact under "
                   "worker crashes")
        save_table(table, "e9_divide_conquer")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, r in rows.items():
        assert r["result"] == EXPECTED, f"{k} crashes: wrong sum"
        if k:
            assert r["recycled"] >= 1
