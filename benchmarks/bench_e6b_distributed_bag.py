"""E6b — the bag-of-tasks on the full distributed stack, in virtual time.

The companion to E6 (threads, wall clock): the same paradigm over the
simulated replica group, where the failure tuple arrives through the real
chain (crash → heartbeat silence → suspicion → ordered HostFailed), so we
can measure the *recovery latency pipeline* the paper's design implies:

    crash ──(detector timeout)──► failure tuple
          ──(monitor's move)────► task back in the bag
          ──(another worker)────► result delivered

The experiment reports each stage for a mid-computation worker crash,
plus total makespan with and without the crash.
"""

from __future__ import annotations

from repro import FAILURE_TAG, formal
from repro.bench import Table, save_table
from repro.bench.workloads import make_cluster
from repro.paradigms import simstyle

LIMIT = 600_000_000.0
N_TASKS = 12


def run_case(crash: bool, seed: int) -> dict:
    cluster = make_cluster(4, seed=seed, quiet=False)
    t_start = cluster.sim.now

    def seeder(view):
        bag = yield from simstyle.seed_bag(view, list(range(N_TASKS)))
        return bag

    p = cluster.spawn(0, seeder)
    cluster.run_until(p.finished, limit=LIMIT)
    bag = p.finished.value

    mon = cluster.spawn(0, simstyle.failure_monitor, bag, 1 if crash else 0)
    workers = []
    if crash:
        # the doomed worker freezes holding its second task
        cluster.spawn(
            3, lambda v: simstyle.ft_worker(v, bag, 30, freeze_after=1),
            name="doomed-worker",
        )
        workers = [
            cluster.spawn(h, simstyle.ft_worker, bag, h) for h in (1, 2)
        ]
    else:
        workers = [
            cluster.spawn(h, simstyle.ft_worker, bag, h) for h in (1, 2, 3)
        ]
    coll = cluster.spawn(0, simstyle.collector, N_TASKS)

    stages = {}
    if crash:
        cluster.run(until=cluster.sim.now + 60_000)
        t_crash = cluster.sim.now
        cluster.crash(3)

        # watch for the failure tuple's appearance
        def watch(view):
            yield view.rd(view.main_ts, FAILURE_TAG, formal(int))
            return view.sim.now

        pw = cluster.spawn(0, watch)
        cluster.run_until(pw.finished, limit=LIMIT)
        stages["detect_ms"] = (pw.finished.value - t_crash) / 1000.0
        cluster.run_until(coll.finished, limit=LIMIT)
        stages["crash_to_done_ms"] = (cluster.sim.now - t_crash) / 1000.0
    else:
        cluster.run_until(coll.finished, limit=LIMIT)

    results = coll.finished.value
    assert sorted(p for p, _r in results) == list(range(N_TASKS))
    stages["makespan_ms"] = (cluster.sim.now - t_start) / 1000.0

    def stopper(view):
        yield from simstyle.poison(view, bag, 3)

    cluster.spawn(0, stopper)
    cluster.run(until=cluster.sim.now + 2_000_000)
    assert cluster.converged()
    return stages


def test_e6b_distributed_recovery_pipeline(benchmark):
    def run():
        clean = run_case(crash=False, seed=5)
        crashed = run_case(crash=True, seed=5)
        table = Table(
            f"E6b: distributed bag-of-tasks, {N_TASKS} tasks, 3 workers "
            "(virtual ms)",
            ["scenario", "makespan ms", "detect ms", "crash→all done ms"],
        )
        table.add("no failures", clean["makespan_ms"], "", "")
        table.add("1 worker host crashes", crashed["makespan_ms"],
                  crashed["detect_ms"], crashed["crash_to_done_ms"])
        table.note(
            "recovery latency = detector timeout + one monitor AGS + one "
            "redo; every task completed exactly once in both runs"
        )
        save_table(table, "e6b_distributed_bag")
        return clean, crashed

    clean, crashed = benchmark.pedantic(run, rounds=1, iterations=1)
    # the failure tuple appears roughly one detector timeout post-crash
    assert 50.0 <= crashed["detect_ms"] <= 400.0
    # the crashed run costs more, but bounded: detection dominates
    assert crashed["makespan_ms"] > clean["makespan_ms"]
    assert crashed["crash_to_done_ms"] < 1_000.0
