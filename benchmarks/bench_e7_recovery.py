"""E7 — recovery: restart protocol and state-transfer cost.

Sec. 5 of the paper: "When a processor P_i recovers, a restart message is
multicast to the other processors, which then execute a protocol to add
P_i back into the group" — followed by a state transfer of the stable
tuple spaces.

We crash one replica of a 3-host group, fill the stable space to various
sizes while it is down, restart it, and measure

- **rejoin time**: restart → snapshot installed (virtual ms),
- **snapshot bytes** on the wire (from network stats),

as a function of the stable-TS size.

Shape claims:

- rejoin time is a protocol constant (restart announcement + ordered
  HostRecovered + one snapshot unicast) plus a term linear in state size
  (the snapshot's transmission time at 10 Mb/s);
- the other replicas never stop serving during recovery.
"""

from __future__ import annotations

from repro.bench import Table, save_table
from repro.bench.workloads import make_cluster

SIZES = (0, 100, 500, 2000, 5000)


def recovery_run(n_tuples: int, seed: int) -> dict:
    cluster = make_cluster(3, seed=seed, quiet=False)

    def writer(view, n):
        for i in range(n):
            yield view.out(view.main_ts, "data", i, "payload-" * 4)

    # a little pre-crash state so the snapshot is never trivial
    p = cluster.spawn(0, writer, 5)
    cluster.run_until(p.finished, limit=120_000_000.0)
    cluster.crash(2)
    cluster.settle(1_000_000)
    p = cluster.spawn(0, writer, n_tuples)
    cluster.run_until(p.finished, limit=600_000_000.0)

    bytes_before = cluster.segment.stats.bytes
    t0 = cluster.sim.now
    cluster.recover(2)
    r2 = cluster.replica(2)

    # other replicas keep serving while 2 rejoins
    served = []

    def busy(view):
        for i in range(20):
            yield view.out(view.main_ts, "during", i)
            served.append(i)

    cluster.spawn(1, busy)
    cluster.run_until(r2.recovered_event, limit=600_000_000.0)
    rejoin_ms = (cluster.sim.now - t0) / 1000.0
    transfer_bytes = cluster.segment.stats.bytes - bytes_before
    cluster.settle(2_000_000)
    return {
        "rejoin_ms": rejoin_ms,
        "transfer_kb": transfer_bytes / 1024.0,
        "served_during": len(served),
        "converged": cluster.converged(),
        "size_after": r2.space_size(cluster.main_ts),
    }


def test_e7_recovery_cost_vs_state_size(benchmark):
    def run():
        table = Table(
            "E7: replica recovery (crash one of 3, refill, restart)",
            ["stable tuples", "rejoin ms", "transfer KB",
             "ops served during rejoin", "converged"],
        )
        rows = {}
        for n in SIZES:
            r = recovery_run(n, seed=n + 1)
            rows[n] = r
            table.add(n, r["rejoin_ms"], r["transfer_kb"],
                      r["served_during"], r["converged"])
        table.note(
            "rejoin = restart bcast + ordered HostRecovered + snapshot "
            "unicast; linear-in-state term is the snapshot's wire time"
        )
        save_table(table, "e7_recovery")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, r in rows.items():
        assert r["converged"], f"size {n}: replicas diverged after recovery"
    # state transfer grows with state size...
    assert rows[5000]["transfer_kb"] > rows[0]["transfer_kb"] * 5
    # ...and so does rejoin time, but it stays bounded (one transfer)
    assert rows[5000]["rejoin_ms"] > rows[0]["rejoin_ms"]
    # the group kept serving while the newcomer synced
    assert rows[2000]["served_during"] > 0
