"""Ablation A1 — total-order algorithm: fixed sequencer vs token ring.

DESIGN.md calls out the ordering protocol as the implementation's key
design choice.  The paper's Consul uses a centralized ordering scheme;
this ablation quantifies the trade-off against the classic decentralized
alternative on identical workloads:

- **idle-cluster latency** (1 client): the sequencer answers in a fixed
  two hops; a token-ring submission waits for the token (~half a rotation
  on average) — sequencer should win clearly;
- **multi-source throughput** (every host submitting): the sequencer's
  CPU serializes all ordering work; the ring rotates it — the gap should
  narrow or invert;
- **wire cost**: the ring replaces per-request REQ unicasts with a steady
  background of token frames.
"""

from __future__ import annotations

from repro.bench import Table, save_table
from repro.bench.workloads import make_cluster, mean
from repro.core.ags import AGS, Op

N_SAMPLES = 30


def idle_latency(ordering: str, n_hosts: int, seed: int) -> float:
    cluster = make_cluster(n_hosts, seed=seed, ordering=ordering)
    samples: list[float] = []

    def driver(view):
        for i in range(N_SAMPLES):
            t0 = view.sim.now
            yield view.out(view.main_ts, "m", i)
            samples.append(view.sim.now - t0)

    proc = cluster.spawn(n_hosts - 1, driver)
    cluster.run_until(proc.finished, limit=240_000_000.0)
    if proc.error is not None:
        raise proc.error
    return mean(samples)


def loaded_run(ordering: str, n_hosts: int, per_host: int, seed: int) -> dict:
    cluster = make_cluster(n_hosts, seed=seed, ordering=ordering)
    t0 = cluster.sim.now

    def driver(view, tag):
        for i in range(per_host):
            yield view.out(view.main_ts, tag, i)

    procs = [cluster.spawn(h, driver, f"t{h}") for h in range(n_hosts)]
    cluster.run_until_all(procs, limit=600_000_000.0)
    elapsed = cluster.sim.now - t0
    total = n_hosts * per_host
    cluster.settle(2_000_000)
    assert cluster.converged()
    assert cluster.replica(0).space_size(cluster.main_ts) == total
    return {
        "elapsed_ms": elapsed / 1000.0,
        "throughput_per_s": total / (elapsed / 1_000_000.0),
        "frames": cluster.segment.stats.frames,
    }


def test_ablation_ordering_idle_latency(benchmark):
    def run():
        table = Table(
            "A1a: single-client out() latency, sequencer vs token ring "
            "(virtual ms)",
            ["replicas", "sequencer ms", "token ring ms"],
        )
        rows = {}
        for n in (3, 5, 8):
            seq = idle_latency("sequencer", n, seed=n) / 1000.0
            tok = idle_latency("token", n, seed=n) / 1000.0
            rows[n] = (seq, tok)
            table.add(n, seq, tok)
        table.note("token ring pays ~half a rotation of waiting per op")
        save_table(table, "ablation_ordering_latency")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, (seq, tok) in rows.items():
        assert seq < tok  # the paper's centralized choice wins idle latency
    # and the ring's penalty grows with ring size
    assert rows[8][1] > rows[3][1]


def test_ablation_ordering_loaded_throughput(benchmark):
    def run():
        table = Table(
            "A1b: all-hosts load (every host submits 20 ops), 5 replicas",
            ["algorithm", "elapsed ms", "ops/s", "frames"],
        )
        seq = loaded_run("sequencer", 5, 20, seed=1)
        tok = loaded_run("token", 5, 20, seed=1)
        table.add("sequencer", seq["elapsed_ms"], seq["throughput_per_s"],
                  seq["frames"])
        table.add("token ring", tok["elapsed_ms"], tok["throughput_per_s"],
                  tok["frames"])
        table.note(
            "under multi-source load the sequencer CPU serializes ordering; "
            "the ring distributes it (at the cost of token traffic)"
        )
        save_table(table, "ablation_ordering_loaded")
        return seq, tok

    seq, tok = benchmark.pedantic(run, rounds=1, iterations=1)
    # correctness held for both (asserted inside); the ring must at least
    # close most of the idle-latency gap under load
    assert tok["elapsed_ms"] < seq["elapsed_ms"] * 3
