"""Telemetry-plane overhead — what the networked endpoint costs.

The HTTP endpoint's acceptance bar: the fully-enabled plane — windowed
instruments recording on the hot path, the alert engine evaluating at
1 Hz, and an external scraper hitting ``/metrics`` ~4×/s — must cost
<5% of blocking out-throughput.  The windowed instruments are the only
per-operation addition (one extra ring-slice bucket add per recorded
latency; everything else rides threads outside the pipeline), so the
budget is expected to be dominated by GIL pressure from the scrape
handler rendering the Prometheus text.

Measured as blocking out-throughput with concurrent clients on both
real backends, two configurations each:

- **off** — no endpoint, no alert engine (the windowed instruments
  themselves always record; they are part of the metrics layer now);
- **on**  — ``serve_telemetry()`` with the default alert rules plus a
  client thread scraping ``GET /metrics`` every 250 ms for the whole
  measurement — still far more aggressive than any real Prometheus
  interval (typically 15 s), and the timed sections are seconds long so
  several scrapes land inside each.  Note the scraper necessarily runs
  *in-process* here, so on the threaded backend the measurement charges
  the urllib client work to the same GIL as the pipeline — a real
  external scraper costs strictly less than what this reports.

The off→on ratio per backend is the headline metric; the committed
full-size baseline documents the <5% claim, and the quick-size CI run
gates only on gross regressions (blocking round trips are
latency-bound, so scheduler noise dominates small deltas).
"""

from __future__ import annotations

import threading
import time
import urllib.request

from repro.bench import Table, save_table
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime

CLIENTS = 8
OPS = {"threaded": 1000, "multiproc": 150}  # blocking out/in pairs per client
QUICK_DIVISOR = 5
SCRAPE_INTERVAL = 0.25
#: The headline ratio is measured *paired*: off and on timed inside the
#: same runtime, back to back, so thread placement and allocator state
#: cancel out of the quotient; the median pair over REPEATS fresh
#: runtimes is the estimator (a best-of across separate runtimes lets
#: one lucky 'off' runtime masquerade as endpoint overhead).
REPEATS = 5


def _spawn_clients(clients: int, body) -> float:
    barrier = threading.Barrier(clients + 1)

    def worker(c: int) -> None:
        barrier.wait()
        body(c)

    threads = [
        threading.Thread(target=worker, args=(c,), name=f"bench-client-{c}")
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _throughput(rt, per_client: int) -> float:
    for k in range(20):  # absorb replica startup before timing
        rt.out(rt.main_ts, "warmup", k)
    rt.quiesce()

    # out/in pairs so the space stays bounded: the introspection image
    # behind /snapshot and the alert engine is proportional to live
    # state, and an accumulate-only workload would grow it without
    # bound and charge that growth to the 'on' configuration
    def body(c: int) -> None:
        for k in range(per_client):
            rt.out(rt.main_ts, "bench", c, k)
            rt.in_(rt.main_ts, "bench", c, k)

    return CLIENTS * per_client * 2 / _spawn_clients(CLIENTS, body)


class _Scraper:
    """A client hammering /metrics on its own thread, like Prometheus."""

    def __init__(self, url: str, interval: float = SCRAPE_INTERVAL):
        self.url = url + "/metrics"
        self.interval = interval
        self.scrapes = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="bench-scraper", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                with urllib.request.urlopen(self.url, timeout=5) as r:
                    r.read()
                self.scrapes += 1
            except OSError:
                pass  # endpoint racing shutdown; the run is ending

    def stop(self) -> int:
        self._stop.set()
        self._thread.join(timeout=5.0)
        return self.scrapes


def run_benchmark(quick: bool = False) -> dict[str, dict[str, float]]:
    """Measure both backends, save the report table, return raw numbers."""
    import statistics

    div = QUICK_DIVISOR if quick else 1
    table = Table(
        f"Telemetry-endpoint overhead: blocking out/s, {CLIENTS} clients",
        ["backend", "telemetry", "out/s", "scrapes", "vs off"],
    )
    out: dict[str, dict[str, float]] = {}
    for name, make_rt in (
        ("threaded", lambda: ThreadedReplicaRuntime(3)),
        ("multiproc", lambda: MultiprocessRuntime(3)),
    ):
        per = OPS[name] // div
        ratios: list[float] = []
        best_off = best_on = 0.0
        scrapes = 0
        for _ in range(REPEATS):  # quick shrinks ops, not repeats
            rt = make_rt()
            try:
                off = _throughput(rt, per)
                server = rt.serve_telemetry(0)
                scraper = _Scraper(server.url)
                on = _throughput(rt, per)
                got = scraper.stop()
            finally:
                rt.shutdown()
            ratios.append(on / off)
            best_off = max(best_off, off)
            if on > best_on:
                best_on, scrapes = on, got
        ratio = statistics.median(ratios)
        table.add(name, "off", best_off, 0, "1.00x")
        table.add(name, "on", best_on, scrapes, f"{ratio:.2f}x")
        out[name] = {"off": best_off, "on": best_on, "ratio": ratio}
    table.note(
        "'on' = serve_telemetry() with the default alert rules evaluating "
        f"at 1 Hz plus an in-process client scraping GET /metrics every "
        f"{SCRAPE_INTERVAL * 1000:.0f} ms for the whole measurement "
        "(an external scraper costs strictly less); "
        "windowed instruments record in both configurations (they are "
        "part of the metrics layer); 'vs off' is the median of "
        f"{REPEATS} paired off/on measurements inside the same runtime "
        "(out/s columns are the best single measurements)"
    )
    save_table(table, "bench_telemetry")
    return out


def test_telemetry_overhead(benchmark):
    out = benchmark.pedantic(
        run_benchmark, kwargs={"quick": True}, rounds=1, iterations=1
    )
    for rates in out.values():
        # quick-size timed sections are short on a 1-CPU CI host, so a
        # scrape render can eat a visible GIL slice — this floor only
        # catches the endpoint *wedging* the pipeline; the committed
        # full-size baseline is what documents the <5% overhead claim
        assert rates["ratio"] > 0.6, rates


def main(argv=None) -> int:
    import argparse

    from repro.bench import make_result, metric, save_result

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"{QUICK_DIVISOR}x fewer ops per cell (CI smoke)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default="BENCH_telemetry.json",
        help="machine-readable results path (default: "
        "benchmarks/results/BENCH_telemetry.json)",
    )
    opts = parser.parse_args(argv)
    out = run_benchmark(quick=opts.quick)
    metrics: dict[str, dict] = {}
    for name, rates in out.items():
        metrics[f"{name}_off_out_per_s"] = metric(
            rates["off"], "higher", unit="ops/s"
        )
        metrics[f"{name}_on_out_per_s"] = metric(
            rates["on"], "higher", unit="ops/s"
        )
        # the acceptance headline: throughput with the endpoint serving
        # and being scraped as a fraction of bare throughput, measured
        # paired inside the same runtime
        metrics[f"{name}_on_vs_off"] = metric(
            rates["ratio"], "higher", tolerance=0.15
        )
    payload = make_result(
        "telemetry",
        metrics,
        config={
            "clients": CLIENTS,
            "ops": OPS,
            "scrape_interval_s": SCRAPE_INTERVAL,
            "repeats": REPEATS,
        },
        quick=opts.quick,
    )
    print(f"wrote {save_result(payload, opts.json)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
