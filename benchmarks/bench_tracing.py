"""Flight-recorder overhead — what always-on tracing costs.

The tracing acceptance bar is two-sided: **zero** overhead when disabled
(every emit site is a single ``tracer is None`` branch) and **cheap
enough to leave on** when enabled (the record path is one GIL-atomic
counter bump plus one list-slot store; apply spans from replicas ship
back batched, one queue item per applied batch).

Measured here as blocking out-throughput with concurrent clients on both
real backends, three configurations each:

- **off**      — no tracer attached (the seed behaviour);
- **on**       — a ``FlightRecorder`` attached, default 64 Ki-event ring;
- **on+wrap**  — a deliberately tiny ring (256 events) forced to wrap
  constantly, showing overwrite costs no more than append.

The off→on delta is the headline number reported in
``benchmarks/results/bench_tracing.txt``.  It is held to a loose bound
(≤25% throughput loss) rather than a tight one: blocking round trips are
latency-bound, so run-to-run scheduling noise dominates any honest
tighter bound.
"""

from __future__ import annotations

import threading
import time

from repro.bench import Table, save_table
from repro.obs.tracing import FlightRecorder
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime

CLIENTS = 8
OPS = {"threaded": 250, "multiproc": 100}  # blocking outs per client
QUICK_DIVISOR = 5


def _spawn_clients(clients: int, body) -> float:
    barrier = threading.Barrier(clients + 1)

    def worker(c: int) -> None:
        barrier.wait()
        body(c)

    threads = [
        threading.Thread(target=worker, args=(c,), name=f"bench-client-{c}")
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _throughput(rt, per_client: int) -> float:
    for k in range(20):  # absorb replica startup before timing
        rt.out(rt.main_ts, "warmup", k)
    rt.group.quiesce()

    def body(c: int) -> None:
        for k in range(per_client):
            rt.out(rt.main_ts, "bench", c, k)

    return CLIENTS * per_client / _spawn_clients(CLIENTS, body)


CONFIGS = [
    ("off", lambda: None),
    ("on", lambda: FlightRecorder()),
    ("on+wrap", lambda: FlightRecorder(capacity=256)),
]


def run_benchmark(quick: bool = False) -> dict[str, dict[str, float]]:
    """Measure both backends, save the report table, return raw numbers."""
    div = QUICK_DIVISOR if quick else 1
    table = Table(
        f"Flight-recorder overhead: blocking out/s, {CLIENTS} clients",
        ["backend", "tracing", "out/s", "events", "vs off"],
    )
    out: dict[str, dict[str, float]] = {}
    for name, make_rt in (
        ("threaded", lambda t: ThreadedReplicaRuntime(3, tracer=t)),
        ("multiproc", lambda t: MultiprocessRuntime(3, tracer=t)),
    ):
        per = OPS[name] // div
        rates: dict[str, float] = {}
        for label, make_tracer in CONFIGS:
            tracer = make_tracer()
            rt = make_rt(tracer)
            try:
                rates[label] = _throughput(rt, per)
            finally:
                rt.shutdown()
            n_events = len(tracer) if tracer is not None else 0
            table.add(
                name, label, rates[label], n_events,
                f"{rates[label] / rates['off']:.2f}x",
            )
        out[name] = rates
    table.note(
        "enabled-path cost: ~5 ring stores per AGS (submit/broadcast/"
        "3 applies/e2e) + one batched SPANS queue item per applied "
        "batch; disabled path is one `is None` branch per site"
    )
    save_table(table, "bench_tracing")
    return out


def test_tracing_overhead(benchmark):
    out = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    for rates in out.values():
        # enabled tracing must stay within 25% of untraced throughput
        assert rates["on"] > 0.75 * rates["off"], rates
        assert rates["on+wrap"] > 0.75 * rates["off"], rates


def main(argv=None) -> int:
    import argparse

    from repro.bench import make_result, metric, save_result

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"{QUICK_DIVISOR}x fewer ops per cell (CI smoke)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default="BENCH_tracing.json",
        help="machine-readable results path (default: "
        "benchmarks/results/BENCH_tracing.json)",
    )
    opts = parser.parse_args(argv)
    out = run_benchmark(quick=opts.quick)
    metrics: dict[str, dict] = {}
    for name, rates in out.items():
        metrics[f"{name}_off_out_per_s"] = metric(
            rates["off"], "higher", unit="ops/s"
        )
        metrics[f"{name}_on_out_per_s"] = metric(
            rates["on"], "higher", unit="ops/s"
        )
        # the headline number: enabled-tracing throughput as a fraction
        # of untraced — must stay near 1.0
        metrics[f"{name}_on_vs_off"] = metric(rates["on"] / rates["off"], "higher")
        metrics[f"{name}_wrap_vs_off"] = metric(
            rates["on+wrap"] / rates["off"], "higher"
        )
    payload = make_result(
        "tracing",
        metrics,
        config={"clients": CLIENTS, "ops": OPS},
        quick=opts.quick,
    )
    print(f"wrote {save_result(payload, opts.json)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
