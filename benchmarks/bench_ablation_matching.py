"""Ablation A2 — the signature/first-field matching index.

FT-lcc "analyzes and catalogs the signatures of all patterns … used
primarily for matching purposes" (Sec. 5.2) — i.e., the original system
also treated indexed matching as a design requirement.  This ablation
quantifies what the index buys: we compare the production
:class:`~repro.core.matching.TupleStore` against a linear-scan reference
on stores of growing size.

Expected shape: indexed lookup stays ~flat as the store grows (bucket
probe + oldest-in-bucket), linear scan grows linearly; typed formals hit
the fast path, untyped formals degrade gracefully.
"""

from __future__ import annotations

import time

from repro import Pattern, TupleStore, formal
from repro.bench import Table, save_table
from repro.core.tuples import LindaTuple

SIZES = (100, 1000, 10_000)
PROBES = 300


class LinearStore:
    """The no-index ablation: a list plus linear scans."""

    def __init__(self) -> None:
        self.items: list[LindaTuple] = []

    def add(self, tup: LindaTuple) -> None:
        self.items.append(tup)

    def find(self, pattern: Pattern) -> LindaTuple | None:
        for t in self.items:
            if pattern.matches(t):
                return t
        return None


def fill(store, n: int) -> None:
    """n bulk tuples first, then one tuple per probe channel at the END.

    The probe channels sit behind every filler, so a scan-based matcher
    really does pay O(n) per probe, while an indexed one jumps straight
    to the channel's bucket — the workload a "rare channel in a big
    space" program (e.g. a result collector) actually generates.
    """
    for i in range(n):
        store.add(LindaTuple(("bulk", i, float(i))))
    for i in range(PROBES):
        store.add(LindaTuple((f"probe{i}", i, float(i))))


def time_probes(fn, patterns) -> float:
    t0 = time.perf_counter()
    for p in patterns:
        assert fn(p) is not None
    return (time.perf_counter() - t0) / len(patterns) * 1e6  # us/probe


def test_ablation_matching_index(benchmark):
    def run():
        table = Table(
            "A2: associative lookup cost (us/probe) — indexed vs linear scan",
            ["store size", "indexed typed", "indexed untyped", "linear scan"],
        )
        rows = {}
        for n in SIZES:
            indexed, linear = TupleStore(), LinearStore()
            fill(indexed, n)
            fill(linear, n)
            typed = [
                Pattern((f"probe{i}", formal(int), formal(float)))
                for i in range(PROBES)
            ]
            untyped = [
                Pattern((f"probe{i}", formal(), formal()))
                for i in range(PROBES)
            ]
            t_idx = time_probes(
                lambda p: indexed.find(p, remove=False), typed
            )
            t_un = time_probes(
                lambda p: indexed.find(p, remove=False), untyped
            )
            t_lin = time_probes(linear.find, typed)
            rows[n] = (t_idx, t_un, t_lin)
            table.add(n, t_idx, t_un, t_lin)
        table.note("indexed typed probes stay ~flat; linear scans grow "
                   "with store size")
        save_table(table, "ablation_matching_index")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # the index pays off by >=10x at 10k tuples
    t_idx, _t_un, t_lin = rows[10_000]
    assert t_lin > t_idx * 10
    # and indexed cost grows far slower than store size
    assert rows[10_000][0] < rows[100][0] * 20
    # linear cost grows with the store
    assert rows[10_000][2] > rows[100][2] * 5


def test_ablation_first_field_index(benchmark):
    """Second-level index on field 0: many same-signature channels."""

    def run():
        store = TupleStore()
        n_channels = 2000
        for i in range(n_channels):
            store.add(LindaTuple((f"c{i}", i)))
        # all tuples share ONE signature; only the first-field index
        # separates the channels
        patterns = [Pattern((f"c{i}", formal(int))) for i in range(0, 2000, 7)]
        t0 = time.perf_counter()
        for p in patterns:
            m = store.find(p, remove=False)
            assert m is not None
        per = (time.perf_counter() - t0) / len(patterns) * 1e6
        table = Table(
            "A2b: first-field (channel) index, 2000 channels, 1 signature",
            ["probe", "us/probe"],
        )
        table.add("keyed channel probe", per)
        save_table(table, "ablation_first_field")
        return per

    per = benchmark.pedantic(run, rounds=1, iterations=1)
    # without the channel index this would scan ~1000 tuples per probe;
    # with it a probe is a couple of dict hops
    assert per < 100.0
