"""Sharded tuple space — partitioning vs full replication on a fixed fleet.

The single-sequencer deployment totally orders every command through one
sequencer and applies it on **every** replica: with R replicas, each
``out`` costs one batch pickle plus R queue hops plus R state-machine
applies.  ``shards=N`` splits the space into N content-partitioned
replica groups with independent sequencers, and a single-shard statement
touches only its own group — the per-command multicast and apply cost
drops from the whole fleet to one partition's replicas.

So the honest comparison holds the **fleet** fixed: ``FLEET`` replica
processes total, deployed as one fully replicated group (``shards=1``,
every process holds everything) or as 2/4 partitions.  Throughput gains
at higher shard counts are exactly the broadcast+apply work that
partitioning removes; they do not depend on spare cores (on a 1-core
host the win is *work removed*, not parallelism gained — with free cores
the independent sequencers additionally run concurrently).

Workloads, per (backend, shard count):

- **pipelined out/s** — clients post ``out`` statements over 16 distinct
  channels (first fields) without waiting, then the run is timed to full
  drain via per-shard in-band quiesces.  Saturates every sequencer; the
  headline column.
- **blocking out+in/s** — synchronous out/in round trips on
  client-private channels: per-operation latency, which sharding must
  not regress (each pair still costs one multicast on one shard).

A final traced segment mixes single-shard and cross-shard (wildcard)
statements on a 4-shard runtime and feeds the flight recorder through
:func:`repro.obs.check.check_consistency` — the per-shard total-order
invariant is machine-checked in the same run that measures throughput.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro import AGS, Op, formal
from repro.bench import Table, save_table
from repro.obs.check import check_consistency
from repro.obs.tracing import FlightRecorder
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime

SHARD_COUNTS = (1, 2, 4)
CHANNELS = 16  # distinct first fields = distinct partitions
CLIENTS = 8
#: Total replica processes/threads, split evenly across the shard groups:
#: shards=1 -> one 8-replica group, shards=4 -> four 2-replica groups.
FLEET = 8

PIPELINED_OPS = {"threaded": 600, "multiproc": 300}  # per client
BLOCKING_OPS = {"threaded": 150, "multiproc": 50}
QUICK_DIVISOR = 5


def _spawn_clients(clients: int, body: Callable[[int], None]) -> float:
    barrier = threading.Barrier(clients + 1)

    def worker(c: int) -> None:
        barrier.wait()
        body(c)

    threads = [
        threading.Thread(target=worker, args=(c,), name=f"bench-client-{c}")
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _warmup(rt: Any) -> None:
    for j in range(CHANNELS):
        rt.out(rt.main_ts, f"ch{j}", -1)
        rt.inp(rt.main_ts, f"ch{j}", -1)
    rt.quiesce()


def _pipelined_out(rt: Any, per_client: int) -> float:
    """Pipelined out/s over CHANNELS distinct first fields."""
    _warmup(rt)
    sharded = rt.sharded

    def body(c: int) -> None:
        for k in range(per_client):
            chan = f"ch{(c + k) % CHANNELS}"
            sharded.post_ags(AGS.atomic(Op.out(rt.main_ts, chan, c, k)))

    elapsed = _spawn_clients(CLIENTS, body)
    t0 = time.perf_counter()
    rt.quiesce()  # in-band per shard: answered after every posted command
    drained = elapsed + (time.perf_counter() - t0)
    return CLIENTS * per_client / drained


def _blocking_roundtrip(rt: Any, per_client: int) -> float:
    """Synchronous out+in pairs/s on client-private channels."""
    _warmup(rt)

    def body(c: int) -> None:
        chan = f"client{c}"
        for k in range(per_client):
            rt.out(rt.main_ts, chan, k)
            rt.in_(rt.main_ts, chan, k)

    elapsed = _spawn_clients(CLIENTS, body)
    return CLIENTS * per_client / elapsed


def _checked_cross_shard_segment() -> dict[str, Any]:
    """Mixed single/cross-shard traffic under a tracer, consistency-checked."""
    tracer = FlightRecorder()
    rt = ThreadedReplicaRuntime(2, shards=4, tracer=tracer)
    try:
        for i in range(40):
            rt.out(rt.main_ts, f"ch{i % CHANNELS}", i)
        drained = 0
        while rt.inp(rt.main_ts, formal(str), formal(int)) is not None:
            drained += 1  # wildcard first field: the cross-shard rung
        rt.quiesce()
    finally:
        rt.shutdown()
    report = check_consistency(tracer)
    return {
        "ok": report.ok,
        "drained": drained,
        "compared_slots": report.compared_slots,
        "violations": report.violations,
    }


def run_benchmark(quick: bool = False) -> dict[str, Any]:
    div = QUICK_DIVISOR if quick else 1
    table = Table(
        f"Sharding a fixed fleet of {FLEET} replicas: {CLIENTS} clients, "
        f"{CHANNELS} channels",
        ["backend", "shards", "replicas/shard", "pipelined out/s",
         "blocking out+in/s", "out/s vs 1 shard"],
    )
    results: dict[str, Any] = {}
    for name, make_rt in (
        (
            "threaded",
            lambda s: ThreadedReplicaRuntime(FLEET // s, shards=s),
        ),
        (
            "multiproc",
            lambda s: MultiprocessRuntime(FLEET // s, shards=s),
        ),
    ):
        per_backend: dict[int, dict[str, float]] = {}
        for shards in SHARD_COUNTS:
            rt = make_rt(shards)
            try:
                pipelined = _pipelined_out(rt, PIPELINED_OPS[name] // div)
            finally:
                rt.shutdown()
            rt = make_rt(shards)
            try:
                blocking = _blocking_roundtrip(rt, BLOCKING_OPS[name] // div)
            finally:
                rt.shutdown()
            per_backend[shards] = {
                "replicas_per_shard": FLEET // shards,
                "pipelined_out_per_s": pipelined,
                "blocking_pair_per_s": blocking,
            }
            base = per_backend[SHARD_COUNTS[0]]["pipelined_out_per_s"]
            table.add(
                name, shards, FLEET // shards, pipelined, blocking,
                f"{pipelined / base:.2f}x",
            )
        results[name] = per_backend
    consistency = _checked_cross_shard_segment()
    table.note(
        "fixed fleet: a command on 1 shard is broadcast to and applied by "
        f"all {FLEET} replicas; on 4 shards only by its partition's "
        f"{FLEET // 4} — the removed multicast+apply work is the speedup. "
        f"cross-shard consistency check: "
        f"{'OK' if consistency['ok'] else 'VIOLATED'} "
        f"({consistency['compared_slots']} slots cross-checked)"
    )
    save_table(table, "bench_sharding")
    return {"results": results, "consistency": consistency}


def test_sharding_throughput(benchmark):
    out = benchmark.pedantic(
        run_benchmark, kwargs={"quick": True}, rounds=1, iterations=1
    )
    mp = out["results"]["multiproc"]
    # the headline claim: partitioning a fixed process fleet beats full
    # replication on ordered out throughput
    assert (
        mp[4]["pipelined_out_per_s"] >= 1.5 * mp[1]["pipelined_out_per_s"]
    )
    assert out["consistency"]["ok"]


def main(argv=None) -> int:
    import argparse

    from repro.bench import make_result, metric, save_result

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"{QUICK_DIVISOR}x fewer ops per cell (CI smoke)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default="BENCH_sharding.json",
        help="machine-readable results path (default: "
        "benchmarks/results/BENCH_sharding.json)",
    )
    opts = parser.parse_args(argv)
    out = run_benchmark(quick=opts.quick)
    metrics: dict[str, dict] = {}
    for name, per_backend in out["results"].items():
        for shards, numbers in per_backend.items():
            key = f"{name}_shards{shards}"
            metrics[f"{key}_pipelined_out_per_s"] = metric(
                numbers["pipelined_out_per_s"], "higher", unit="ops/s"
            )
            metrics[f"{key}_blocking_pair_per_s"] = metric(
                numbers["blocking_pair_per_s"], "higher", unit="pairs/s"
            )
    mp = out["results"]["multiproc"]
    scaling = mp[4]["pipelined_out_per_s"] / mp[1]["pipelined_out_per_s"]
    metrics["multiproc_scaling_1_to_4"] = metric(scaling, "higher")
    metrics["cross_shard_consistency_ok"] = metric(
        1.0 if out["consistency"]["ok"] else 0.0, "higher", tolerance=0.01
    )
    payload = make_result(
        "sharding",
        metrics,
        config={
            "clients": CLIENTS,
            "channels": CHANNELS,
            "fleet": FLEET,
            "shard_counts": list(SHARD_COUNTS),
        },
        quick=opts.quick,
    )
    print(f"wrote {save_result(payload, opts.json)}")
    print(f"multiproc pipelined out/s scaling 1->4 shards: {scaling:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
