"""Ablations A3/A4/A5c — recovery pacing, detection, and bounded replay.

Implementation parameters DESIGN.md calls out, each with a real
trade-off this file quantifies:

**A3 — snapshot fragment size.**  E7's development caught the failure
mode twice: unfragmented (or unpaced) snapshot transfers monopolize the
shared 10 Mb medium, starve heartbeats, and get the recovering host (or
its helpers) falsely re-suspected.  The sweep shows the trade: tiny
fragments waste wire/CPU on per-frame overhead; huge ones push the group
toward detector churn.

**A4 — failure-detection latency.**  The heartbeat interval and suspect
timeout trade detection latency (how long a crashed worker's in-progress
subtasks sit unrecycled) against steady-state chatter (frames/second of
heartbeats).  The paper's fail-stop conversion is only as fast as this
detector.

**A5c — recovery time vs snapshot interval (runner schema).**  The
segmented WAL's acceptance bar: recovery must be bounded by the snapshot
cadence, not the history.  A single-host workload of 10x–100x the A5b
log sizes runs once against the full-log :class:`WALRuntime` (replay is
O(history)) and once per snapshot interval against the
:class:`SegmentedWALRuntime` (replay is one snapshot load plus the delta
since the last compaction, with a mid-interval crash so the delta is
representative).  The headline metric is the 10x speedup, which the
durable plane promises to keep ≥5x; ``main()`` publishes the curves as
``BENCH_ablation_recovery.json`` for the perf-regression harness.
"""

from __future__ import annotations

from repro import FAILURE_TAG, formal
from repro.bench import Table, save_table
from repro.bench.workloads import make_cluster
from repro.consul.replica import ReplicaLayer


def recovery_with_fragment_size(frag_bytes: int, n_tuples: int, seed: int) -> dict:
    original = ReplicaLayer.SNAPSHOT_FRAGMENT_BYTES
    ReplicaLayer.SNAPSHOT_FRAGMENT_BYTES = frag_bytes
    try:
        cluster = make_cluster(3, seed=seed, quiet=False)

        def writer(view, n):
            for i in range(n):
                yield view.out(view.main_ts, "data", i, "payload-" * 4)

        p = cluster.spawn(0, writer, 5)
        cluster.run_until(p.finished, limit=120_000_000.0)
        cluster.crash(2)
        cluster.settle(1_000_000)
        p = cluster.spawn(0, writer, n_tuples)
        cluster.run_until(p.finished, limit=600_000_000.0)
        frames0 = cluster.segment.stats.frames
        t0 = cluster.sim.now
        cluster.recover(2)
        r2 = cluster.replica(2)
        cluster.run_until(r2.recovered_event, limit=600_000_000.0)
        rejoin_ms = (cluster.sim.now - t0) / 1000.0
        cluster.settle(3_000_000)
        return {
            "rejoin_ms": rejoin_ms,
            "frames": cluster.segment.stats.frames - frames0,
            "converged": cluster.converged(),
        }
    finally:
        ReplicaLayer.SNAPSHOT_FRAGMENT_BYTES = original


def test_a3_fragment_size_tradeoff(benchmark):
    def run():
        table = Table(
            "A3: snapshot fragment size (2000-tuple transfer, 3 replicas)",
            ["fragment B", "rejoin ms", "transfer frames", "converged"],
        )
        rows = {}
        for frag in (1024, 8192, 65536):
            r = recovery_with_fragment_size(frag, 2000, seed=frag)
            rows[frag] = r
            table.add(frag, r["rejoin_ms"], r["frames"], r["converged"])
        table.note(
            "small fragments pay per-frame overhead; the paced 8 KiB "
            "default balances transfer speed against heartbeat starvation"
        )
        save_table(table, "ablation_fragment_size")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for frag, r in rows.items():
        assert r["converged"], f"fragment size {frag}: diverged"
    # smaller fragments cost more frames
    assert rows[1024]["frames"] > rows[65536]["frames"]


def detection_run(hb_us: float, suspect_us: float, seed: int) -> dict:
    cluster = make_cluster(
        3, seed=seed, quiet=False,
        hb_interval_us=hb_us, suspect_timeout_us=suspect_us,
    )
    # measure steady-state chatter over one quiet virtual second
    frames0 = cluster.segment.stats.frames
    cluster.run(until=cluster.sim.now + 1_000_000)
    chatter = cluster.segment.stats.frames - frames0

    # now crash a host and time the failure tuple's appearance
    def watch(view):
        t = yield view.rd(view.main_ts, FAILURE_TAG, formal(int))
        return t

    p = cluster.spawn(0, watch)
    cluster.run(until=cluster.sim.now + 10_000)
    t0 = cluster.sim.now
    cluster.crash(2)
    cluster.run_until(p.finished, limit=600_000_000.0)
    return {
        "chatter_fps": chatter,  # frames per virtual second
        "detect_ms": (cluster.sim.now - t0) / 1000.0,
    }


def test_a4_detection_latency_vs_chatter(benchmark):
    def run():
        table = Table(
            "A4: failure-detector tuning (heartbeat interval, timeout)",
            ["hb ms", "timeout ms", "chatter frames/s", "detect ms"],
        )
        rows = {}
        for hb, to in ((10_000.0, 40_000.0), (25_000.0, 100_000.0),
                       (100_000.0, 400_000.0)):
            r = detection_run(hb, to, seed=int(hb))
            rows[(hb, to)] = r
            table.add(hb / 1000, to / 1000, r["chatter_fps"], r["detect_ms"])
        table.note(
            "the failure tuple (fail-stop conversion) appears one detector "
            "timeout after the crash; chatter scales inversely with the "
            "heartbeat period"
        )
        save_table(table, "ablation_detection")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    fast = rows[(10_000.0, 40_000.0)]
    slow = rows[(100_000.0, 400_000.0)]
    assert fast["detect_ms"] < slow["detect_ms"]
    assert fast["chatter_fps"] > slow["chatter_fps"]


# --------------------------------------------------------------------- #
# A5c — segmented recovery vs full-log replay (bench-runner schema)
# --------------------------------------------------------------------- #

#: A5b's largest replay measurement is 5 000 records — the "1x" here.
BASE_OPS = 5_000
#: Live tuples kept in the space; everything older is consumed, so the
#: snapshot stays O(state) while the log grows O(history).
KEEP = 1_000
#: Snapshot intervals (records between compactions) swept at 10x.
INTERVALS_10X = (1_000, 5_000, 20_000)
INTERVAL_100X = 20_000
QUICK_DIVISOR = 10


def _populate(rt, n_ops: int, compact_every: int | None) -> None:
    """Drive *n_ops* logged commands, compacting at the given cadence.

    First fills the space to KEEP live tuples, then runs out/in pairs so
    the space size stays put while the log keeps growing.  Compaction is
    invoked deterministically from this loop (not the background thread)
    so every run of a given configuration journals the same history.
    """
    from repro.core.spaces import MAIN_TS

    since = 0
    for i in range(n_ops):
        if i < KEEP or (i - KEEP) % 2 == 0:
            rt.out(MAIN_TS, "x", i)
        else:
            rt.in_(MAIN_TS, "x", formal(int))
        since += 1
        if compact_every is not None and since >= compact_every:
            rt.compact()
            since = 0


def _timed_recovery(kind: str, n_ops: int, interval: int | None, tmp: str):
    """Populate, crash, recover; return (recover_seconds, replayed)."""
    import os
    import time

    from repro.persist import SegmentedWALRuntime, WALRuntime

    if kind == "fulllog":
        path = os.path.join(tmp, f"full-{n_ops}.wal")
        rt = WALRuntime(path, fsync=False)
        _populate(rt, n_ops, None)
        rt.crash()
        t0 = time.perf_counter()
        back = WALRuntime.recover(path)
    else:
        path = os.path.join(tmp, f"seg-{n_ops}-{interval}")
        # segments must rotate well below the snapshot interval or
        # compaction has nothing closed to prune and recovery re-scans
        # the whole history anyway (it would skip the covered slots, but
        # only after unpickling them)
        rt = SegmentedWALRuntime(path, fsync=False, segment_bytes=1 << 15)
        # crash mid-interval: the replayed delta is interval/2, the
        # representative case, not the flattering just-compacted one
        assert interval is not None
        _populate(rt, n_ops, interval)
        _populate(rt, interval // 2, None)
        rt.crash()
        t0 = time.perf_counter()
        back = SegmentedWALRuntime.recover(path, fsync=False)
    seconds = time.perf_counter() - t0
    replayed = back.replayed
    back.close()
    return seconds, replayed


def run_recovery_ablation(quick: bool = False) -> dict:
    """Measure the recovery curves; save the table; return raw numbers."""
    import tempfile

    div = QUICK_DIVISOR if quick else 1
    sizes = {"10x": 10 * BASE_OPS // div, "100x": 100 * BASE_OPS // div}
    table = Table(
        "A5c: recovery time vs snapshot interval (segmented WAL)",
        ["size", "records", "mode", "interval", "recover ms", "replayed"],
    )
    out: dict = {"sizes": sizes, "curves": {}}
    with tempfile.TemporaryDirectory(prefix="bench-a5c-") as tmp:
        for label, n_ops in sizes.items():
            full_s, full_replayed = _timed_recovery("fulllog", n_ops, None, tmp)
            table.add(label, n_ops, "full log", "-", full_s * 1000, full_replayed)
            intervals = (
                INTERVALS_10X if label == "10x" else (INTERVAL_100X,)
            )
            curve = {"fulllog_s": full_s, "segmented": {}}
            for interval in intervals:
                iv = max(interval // div, 10)
                seg_s, seg_replayed = _timed_recovery(
                    "segmented", n_ops, iv, tmp
                )
                # keyed by the NOMINAL interval so quick and full runs
                # produce the same metric names for `bench compare`
                curve["segmented"][interval] = seg_s
                table.add(
                    label, n_ops, "segmented", iv, seg_s * 1000, seg_replayed
                )
            out["curves"][label] = curve
    best_10x = min(out["curves"]["10x"]["segmented"].values())
    out["speedup_10x"] = out["curves"]["10x"]["fulllog_s"] / best_10x
    table.note(
        "full-log replay is O(history); segmented recovery is one snapshot "
        "load (O(state), state capped at "
        f"{KEEP} live tuples) plus the delta since the last compaction — "
        f"10x speedup here: {out['speedup_10x']:.1f}x (bar: >=5x)"
    )
    save_table(table, "ablation_recovery_interval")
    return out


def test_a5c_segmented_recovery_bound(benchmark):
    out = benchmark.pedantic(
        run_recovery_ablation, kwargs={"quick": True}, rounds=1, iterations=1
    )
    # the acceptance bar, at quick size: bounded recovery beats full
    # replay by >=5x even before the history grows to the full 10x run
    assert out["speedup_10x"] >= 5.0, out
    # the curve means something: longer intervals replay bigger deltas
    seg = out["curves"]["10x"]["segmented"]
    assert len(seg) == len(INTERVALS_10X)


def main(argv=None) -> int:
    import argparse

    from repro.bench import make_result, metric, save_result

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"{QUICK_DIVISOR}x smaller logs (CI smoke)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default="BENCH_ablation_recovery.json",
        help="machine-readable results path (default: "
        "benchmarks/results/BENCH_ablation_recovery.json)",
    )
    opts = parser.parse_args(argv)
    out = run_recovery_ablation(quick=opts.quick)
    metrics: dict[str, dict] = {
        # the headline: bounded recovery vs O(history) replay at 10x
        "speedup_10x": metric(out["speedup_10x"], "higher", tolerance=0.5),
    }
    for label, curve in out["curves"].items():
        metrics[f"fulllog_recover_s_{label}"] = metric(
            curve["fulllog_s"], "lower", unit="s"
        )
        for interval, seconds in curve["segmented"].items():
            metrics[f"segmented_recover_s_{label}_iv{interval}"] = metric(
                seconds, "lower", unit="s"
            )
    payload = make_result(
        "ablation_recovery",
        metrics,
        config={
            "base_ops": BASE_OPS,
            "keep_tuples": KEEP,
            "sizes": out["sizes"],
            "intervals_10x": list(INTERVALS_10X),
            "interval_100x": INTERVAL_100X,
        },
        quick=opts.quick,
    )
    print(f"wrote {save_result(payload, opts.json)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())