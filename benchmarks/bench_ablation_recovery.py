"""Ablations A3/A4 — recovery transfer pacing and failure detection.

Two implementation parameters DESIGN.md calls out, each with a real
trade-off the simulated substrate can quantify:

**A3 — snapshot fragment size.**  E7's development caught the failure
mode twice: unfragmented (or unpaced) snapshot transfers monopolize the
shared 10 Mb medium, starve heartbeats, and get the recovering host (or
its helpers) falsely re-suspected.  The sweep shows the trade: tiny
fragments waste wire/CPU on per-frame overhead; huge ones push the group
toward detector churn.

**A4 — failure-detection latency.**  The heartbeat interval and suspect
timeout trade detection latency (how long a crashed worker's in-progress
subtasks sit unrecycled) against steady-state chatter (frames/second of
heartbeats).  The paper's fail-stop conversion is only as fast as this
detector.
"""

from __future__ import annotations

from repro import FAILURE_TAG, formal
from repro.bench import Table, save_table
from repro.bench.workloads import make_cluster
from repro.consul.replica import ReplicaLayer


def recovery_with_fragment_size(frag_bytes: int, n_tuples: int, seed: int) -> dict:
    original = ReplicaLayer.SNAPSHOT_FRAGMENT_BYTES
    ReplicaLayer.SNAPSHOT_FRAGMENT_BYTES = frag_bytes
    try:
        cluster = make_cluster(3, seed=seed, quiet=False)

        def writer(view, n):
            for i in range(n):
                yield view.out(view.main_ts, "data", i, "payload-" * 4)

        p = cluster.spawn(0, writer, 5)
        cluster.run_until(p.finished, limit=120_000_000.0)
        cluster.crash(2)
        cluster.settle(1_000_000)
        p = cluster.spawn(0, writer, n_tuples)
        cluster.run_until(p.finished, limit=600_000_000.0)
        frames0 = cluster.segment.stats.frames
        t0 = cluster.sim.now
        cluster.recover(2)
        r2 = cluster.replica(2)
        cluster.run_until(r2.recovered_event, limit=600_000_000.0)
        rejoin_ms = (cluster.sim.now - t0) / 1000.0
        cluster.settle(3_000_000)
        return {
            "rejoin_ms": rejoin_ms,
            "frames": cluster.segment.stats.frames - frames0,
            "converged": cluster.converged(),
        }
    finally:
        ReplicaLayer.SNAPSHOT_FRAGMENT_BYTES = original


def test_a3_fragment_size_tradeoff(benchmark):
    def run():
        table = Table(
            "A3: snapshot fragment size (2000-tuple transfer, 3 replicas)",
            ["fragment B", "rejoin ms", "transfer frames", "converged"],
        )
        rows = {}
        for frag in (1024, 8192, 65536):
            r = recovery_with_fragment_size(frag, 2000, seed=frag)
            rows[frag] = r
            table.add(frag, r["rejoin_ms"], r["frames"], r["converged"])
        table.note(
            "small fragments pay per-frame overhead; the paced 8 KiB "
            "default balances transfer speed against heartbeat starvation"
        )
        save_table(table, "ablation_fragment_size")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for frag, r in rows.items():
        assert r["converged"], f"fragment size {frag}: diverged"
    # smaller fragments cost more frames
    assert rows[1024]["frames"] > rows[65536]["frames"]


def detection_run(hb_us: float, suspect_us: float, seed: int) -> dict:
    cluster = make_cluster(
        3, seed=seed, quiet=False,
        hb_interval_us=hb_us, suspect_timeout_us=suspect_us,
    )
    # measure steady-state chatter over one quiet virtual second
    frames0 = cluster.segment.stats.frames
    cluster.run(until=cluster.sim.now + 1_000_000)
    chatter = cluster.segment.stats.frames - frames0

    # now crash a host and time the failure tuple's appearance
    def watch(view):
        t = yield view.rd(view.main_ts, FAILURE_TAG, formal(int))
        return t

    p = cluster.spawn(0, watch)
    cluster.run(until=cluster.sim.now + 10_000)
    t0 = cluster.sim.now
    cluster.crash(2)
    cluster.run_until(p.finished, limit=600_000_000.0)
    return {
        "chatter_fps": chatter,  # frames per virtual second
        "detect_ms": (cluster.sim.now - t0) / 1000.0,
    }


def test_a4_detection_latency_vs_chatter(benchmark):
    def run():
        table = Table(
            "A4: failure-detector tuning (heartbeat interval, timeout)",
            ["hb ms", "timeout ms", "chatter frames/s", "detect ms"],
        )
        rows = {}
        for hb, to in ((10_000.0, 40_000.0), (25_000.0, 100_000.0),
                       (100_000.0, 400_000.0)):
            r = detection_run(hb, to, seed=int(hb))
            rows[(hb, to)] = r
            table.add(hb / 1000, to / 1000, r["chatter_fps"], r["detect_ms"])
        table.note(
            "the failure tuple (fail-stop conversion) appears one detector "
            "timeout after the crash; chatter scales inversely with the "
            "heartbeat period"
        )
        save_table(table, "ablation_detection")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    fast = rows[(10_000.0, 40_000.0)]
    slow = rows[(100_000.0, 400_000.0)]
    assert fast["detect_ms"] < slow["detect_ms"]
    assert fast["chatter_fps"] > slow["chatter_fps"]