"""E3 — end-to-end AGS latency: ordering time + replica processing.

Sec. 5.3 of the paper: the Table 1 tuple-processing figures "can be used
to derive at least a rough estimate of the total latency of an AGS by
adding the time required by Consul to disseminate and totally order the
multicast message before passing it up to the TS state machine."

This experiment measures exactly that sum on the simulated cluster:
submit → completion, sweeping (a) the number of operations in the AGS
body and (b) the replica-group size.

Shape claims:

- total latency ≈ a network/ordering constant plus a per-op slope — the
  additive decomposition the paper proposes;
- body size changes latency only marginally (the marginal per-op cost is
  tiny next to the ordering constant), which is why batching many tuple
  operations into ONE AGS is nearly free — and the whole point of the
  single-multicast design;
- replica count barely moves the number (cf. E2).
"""

from __future__ import annotations

from repro.bench import Table, save_table
from repro.bench.workloads import ags_latency_samples, make_cluster, mean
from repro.core.ags import AGS, Op

N_SAMPLES = 30


def stmt_with_body(ts, n_ops: int) -> AGS:
    return AGS.atomic(*[Op.out(ts, "t", i) for i in range(n_ops)])


def e3_latency(n_hosts: int, n_ops: int, seed: int) -> float:
    cluster = make_cluster(n_hosts, seed=seed, jitter_us=150.0)
    samples = ags_latency_samples(
        cluster, n_hosts - 1, lambda ts: stmt_with_body(ts, n_ops), N_SAMPLES
    )
    return mean(samples)


def test_e3_latency_vs_body_size(benchmark):
    def run():
        table = Table(
            "E3: end-to-end AGS latency vs body size (3 replicas, virtual ms)",
            ["ops in body", "mean ms", "per-op overhead ms"],
        )
        lat = {}
        for n_ops in (1, 2, 4, 8, 16, 32):
            lat[n_ops] = e3_latency(3, n_ops, seed=n_ops) / 1000.0
            per_op = (lat[n_ops] - lat[1]) / (n_ops - 1) if n_ops > 1 else 0.0
            table.add(n_ops, lat[n_ops], per_op)
        table.note(
            "paper shape: total = ordering constant + small per-op slope; "
            "batching ops into one AGS is nearly free"
        )
        save_table(table, "e3_ags_latency_body")
        return lat

    lat = benchmark.pedantic(run, rounds=1, iterations=1)
    # a 32-op AGS costs far less than 32 single-op AGSs
    assert lat[32] < 4 * lat[1]
    # and is monotone-ish: more ops never make it cheaper by much
    assert lat[32] >= lat[1] * 0.9


def test_e3_volatile_vs_stable(benchmark):
    """The price of stability: volatile AGSs never touch the network.

    The paper's motivation for the resilience attribute (Sec. 3): volatile
    spaces are "as fast as ordinary memory" while stable ones pay the
    multicast.  Measured on the same cluster, same statement shape.
    """

    def run():
        from repro.core.spaces import Resilience

        cluster = make_cluster(3, seed=77, jitter_us=150.0)

        samples = {"stable": [], "volatile": []}

        def driver(view):
            vol = yield view.create_space("scratch", Resilience.VOLATILE)
            for i in range(20):
                t0 = view.sim.now
                yield view.execute(AGS.atomic(Op.out(view.main_ts, "s", i)))
                samples["stable"].append(view.sim.now - t0)
                t0 = view.sim.now
                yield view.execute(AGS.atomic(Op.out(vol, "v", i)))
                samples["volatile"].append(view.sim.now - t0)

        p = cluster.spawn(2, driver)
        cluster.run_until(p.finished, limit=120_000_000.0)
        if p.error is not None:
            raise p.error
        table = Table(
            "E3c: stable vs volatile AGS latency (3 replicas, virtual ms)",
            ["space kind", "mean ms"],
        )
        st_ms = mean(samples["stable"]) / 1000.0
        vo_ms = mean(samples["volatile"]) / 1000.0
        table.add("stable (replicated)", st_ms)
        table.add("volatile (host-local)", vo_ms)
        table.note("the multicast is the entire difference: volatile ops "
                   "cost only local tuple processing")
        save_table(table, "e3_stable_vs_volatile")
        return st_ms, vo_ms

    st_ms, vo_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    assert vo_ms < st_ms / 3  # stability costs the ordering round


def test_e3_latency_vs_replicas(benchmark):
    def run():
        table = Table(
            "E3b: end-to-end AGS latency vs replica count (4-op body, ms)",
            ["replicas", "mean ms"],
        )
        lat = {}
        for n in (2, 3, 5, 8):
            lat[n] = e3_latency(n, 4, seed=n + 100) / 1000.0
            table.add(n, lat[n])
        save_table(table, "e3_ags_latency_replicas")
        return lat

    lat = benchmark.pedantic(run, rounds=1, iterations=1)
    assert lat[8] < lat[2] * 1.5  # the flatness claim again, end to end
