"""Failover latency — what a replica crash actually costs the clients.

The liveness plane (``LivenessPolicy``) turns the paper's fail-silent
crash into a fail-stop event: a monitor thread combines in-band
PING/PONG silence with a transport probe, declares the replica dead
through the same ordered path as a cooperative ``crash_replica``, and —
with ``auto_recover`` — restarts it and transfers state back in.  This
benchmark measures that whole arc on both parallel backends, under live
client churn, with the kill injected *behind the group's back* by
:class:`repro.chaos.ChaosMonkey` (SIGKILL on multiproc):

- **detect**: kill → the group's alive mask flips (detector latency;
  bounded by ``suspect_after`` + a few probe ticks);
- **visible**: kill → a client's blocking ``rd`` of the ordered failure
  tuple returns (the paper's programmable failure handling — when a
  *program* can react);
- **recover**: detection → the reincarnated replica rejoins via state
  transfer;
- **max stall**: the longest gap between consecutive completed ops any
  churn client observed across the whole run — the end-to-end
  availability cost of crash + detection + frozen-order state transfer;
- **converged**: all replicas fingerprint-identical at the end.

Medians over ``--repeats`` trials; ``--quick`` is the CI smoke size.
"""

from __future__ import annotations

import argparse
import statistics
import threading
import time

from repro import formal
from repro.bench import Table, make_result, metric, save_result, save_table
from repro.chaos import ChaosMonkey
from repro.core.statemachine import FAILURE_TAG
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime
from repro.replication import LivenessPolicy

N_REPLICAS = 3
CLIENTS = 4

# Tight detector so the benchmark measures the machinery, not the
# defaults: suspect after 250ms of silence, probing every 50ms.
POLICY_KW = dict(
    probe_interval=0.05,
    suspect_after=0.25,
    auto_recover=True,
    backoff_initial=0.05,
    backoff_max=0.5,
)


def _make_runtime(backend: str):
    policy = LivenessPolicy(**POLICY_KW)
    if backend == "threaded":
        return ThreadedReplicaRuntime(n_replicas=N_REPLICAS, detect_failures=policy)
    return MultiprocessRuntime(n_replicas=N_REPLICAS, detect_failures=policy)


def _failover_trial(backend: str, churn_s: float, seed: int) -> dict[str, float]:
    """One kill under churn; return the latency decomposition."""
    rt = _make_runtime(backend)
    monkey = ChaosMonkey(rt, seed=seed)
    stop = threading.Event()
    counts = [0] * CLIENTS
    max_gap = [0.0] * CLIENTS

    def churn(c: int) -> None:
        last = time.perf_counter()
        k = 0
        while not stop.is_set():
            rt.out(rt.main_ts, "churn", c, k)
            rt.in_(rt.main_ts, "churn", c, k)
            now = time.perf_counter()
            max_gap[c] = max(max_gap[c], now - last)
            last = now
            counts[c] += 1
            k += 1

    threads = [
        threading.Thread(target=churn, args=(c,), name=f"churn-{c}")
        for c in range(CLIENTS)
    ]
    visible: list[float] = []
    try:
        for t in threads:
            t.start()
        time.sleep(churn_s)  # a healthy baseline before the fault

        victim = monkey.rng.randrange(1, N_REPLICAS)
        t_kill = time.perf_counter()

        def watch() -> None:
            # programmable failure handling: block on the ordered
            # failure tuple like the paper's recovery AGSs would
            rt.rd(rt.main_ts, FAILURE_TAG, formal(int), timeout=30.0)
            visible.append(time.perf_counter() - t_kill)

        watcher = threading.Thread(target=watch, name="failure-watcher")
        watcher.start()
        monkey.kill_replica(victim)
        t_detect = monkey.wait_detected(victim, timeout=10.0)
        t_recover = monkey.wait_recovered(victim, timeout=30.0)
        watcher.join(30.0)
        time.sleep(churn_s)  # churn across the healed group
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=60.0)
    try:
        rt.quiesce()
        converged = rt.converged()
    finally:
        rt.shutdown()
    return {
        "detect_s": t_detect,
        "visible_s": visible[0] if visible else float("nan"),
        "recover_s": t_recover,
        "max_stall_s": max(max_gap),
        "ops": float(sum(counts)),
        "converged": float(converged),
    }


def _median(trials: list[dict[str, float]], key: str) -> float:
    return statistics.median(t[key] for t in trials)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="CI-sized run")
    ap.add_argument(
        "--json",
        metavar="OUT",
        default="BENCH_failover.json",
        help="machine-readable results path (default: "
        "benchmarks/results/BENCH_failover.json)",
    )
    ap.add_argument(
        "--repeats", type=int, default=0,
        help="trials per backend (default: 3, or 1 with --quick)",
    )
    args = ap.parse_args()
    repeats = args.repeats or (1 if args.quick else 3)
    churn_s = 0.2 if args.quick else 0.5

    table = Table(
        "Failover under churn: SIGKILL → detect → failure tuple → "
        f"auto-recover ({N_REPLICAS} replicas, {CLIENTS} clients, "
        f"suspect_after={POLICY_KW['suspect_after']}s)",
        ["backend", "detect ms", "visible ms", "recover ms",
         "max stall ms", "ops", "converged"],
    )
    # Failover latencies are detector-timing plus scheduler noise, so the
    # tolerances are deliberately loose: a real regression here is a 2x
    # move, not a 25% one.
    metrics: dict[str, dict] = {}
    for backend in ("threaded", "multiproc"):
        trials = [
            _failover_trial(backend, churn_s, seed) for seed in range(repeats)
        ]
        table.add(
            backend,
            f"{_median(trials, 'detect_s') * 1e3:.0f}",
            f"{_median(trials, 'visible_s') * 1e3:.0f}",
            f"{_median(trials, 'recover_s') * 1e3:.0f}",
            f"{_median(trials, 'max_stall_s') * 1e3:.0f}",
            f"{_median(trials, 'ops'):.0f}",
            "yes" if all(t["converged"] for t in trials) else "NO",
        )
        metrics[f"{backend}_detect_s"] = metric(
            _median(trials, "detect_s"), "lower", unit="s", tolerance=1.0
        )
        metrics[f"{backend}_visible_s"] = metric(
            _median(trials, "visible_s"), "lower", unit="s", tolerance=1.0
        )
        metrics[f"{backend}_recover_s"] = metric(
            _median(trials, "recover_s"), "lower", unit="s", tolerance=1.0
        )
        metrics[f"{backend}_max_stall_s"] = metric(
            _median(trials, "max_stall_s"), "lower", unit="s", tolerance=1.5
        )
        metrics[f"{backend}_churn_ops"] = metric(
            _median(trials, "ops"), "higher", unit="ops"
        )
        metrics[f"{backend}_converged"] = metric(
            1.0 if all(t["converged"] for t in trials) else 0.0,
            "higher",
            tolerance=0.01,
        )
    print(table.render())
    save_table(table, "bench_failover")
    payload = make_result(
        "failover",
        metrics,
        config={
            "replicas": N_REPLICAS,
            "clients": CLIENTS,
            "policy": POLICY_KW,
            "repeats": repeats,
        },
        quick=args.quick,
    )
    print(f"json -> {save_result(payload, args.json)}")


if __name__ == "__main__":
    main()
