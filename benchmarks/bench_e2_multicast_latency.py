"""E2 — Consul dissemination + total-ordering latency.

The paper reports: "For three replicas executing on Sun-3 workstations
connected by a 10 Mb Ethernet, this dissemination and ordering time has
been measured as approximately 4.0 msec" (Sec. 5).

We reproduce the measurement on the simulated substrate: the time from a
client host submitting a command until that command has been **delivered
in total order at every replica** (the dissemination-complete instant),
swept over replica-group sizes, with controller jitter enabled so the
distribution is non-degenerate.  The per-message protocol-processing cost
is calibrated to workstation-class values, so the 3-replica point should
land in the same low-milliseconds regime as the paper's 4.0 ms.

Shape claims:

- the 3-replica dissemination+ordering time is milliseconds, dominated by
  per-host protocol processing, not wire time;
- latency is *nearly flat* in the group size — the ORD broadcast is one
  frame no matter how many replicas listen.  This flatness is exactly the
  property that lets stable-TS updates cost "a single multicast message";
  contrast experiment E4, where the 2PC baseline's latency grows with N;
- submitting from the sequencer host saves the REQ hop (≈ one unicast +
  one CPU service time cheaper).
"""

from __future__ import annotations

from repro.bench import Table, save_table
from repro.bench.workloads import make_cluster, mean, percentile

N_SAMPLES = 40


def dissemination_latency(
    n_hosts: int, from_host: int, seed: int = 0
) -> list[float]:
    """Submit → delivered-at-every-replica, virtual microseconds."""
    cluster = make_cluster(n_hosts, seed=seed, jitter_us=150.0)
    # tap every replica's state machine to record its last apply time
    last_apply = [0.0] * n_hosts
    for hid in range(n_hosts):
        replica = cluster.replica(hid)

        def tap(cmd, _orig=replica.sm.apply, _hid=hid):
            result = _orig(cmd)
            last_apply[_hid] = cluster.sim.now
            return result

        replica.sm.apply = tap  # type: ignore[method-assign]

    samples: list[float] = []

    def driver(view):
        for i in range(N_SAMPLES):
            t0 = view.sim.now
            yield view.out(view.main_ts, "m", i)
            # completion implies the origin applied; other replicas may
            # apply within the same instant or a hair later — run the
            # clock until everyone has this command
            while min(last_apply) < t0:
                yield _tick(view)
            samples.append(max(last_apply) - t0)

    def _tick(view):
        ev = view.sim.event("tick")
        view.sim.schedule(100.0, ev.succeed, None)
        return ev

    proc = cluster.spawn(from_host, driver)
    cluster.run_until(proc.finished, limit=240_000_000.0)
    if proc.error is not None:
        raise proc.error
    return samples


def test_e2_dissemination_and_ordering(benchmark):
    def run():
        table = Table(
            "E2: dissemination + total-ordering latency (virtual ms)",
            ["replicas", "from", "mean ms", "p90 ms"],
        )
        three_replica_mean = None
        for n in (2, 3, 4, 5, 6, 8):
            for label, host in (("non-sequencer", n - 1), ("sequencer", 0)):
                samples = dissemination_latency(n, host, seed=n)
                m = mean(samples) / 1000.0
                table.add(n, label, m, percentile(samples, 90) / 1000.0)
                if n == 3 and label == "non-sequencer":
                    three_replica_mean = m
        table.note(
            "paper anchor: ~4.0 ms for 3 replicas on Sun-3s + 10 Mb Ethernet"
        )
        table.note(
            "flat-in-N latency is the broadcast advantage; cf. E4's 2PC growth"
        )
        save_table(table, "e2_multicast_latency")
        return three_replica_mean

    three = benchmark.pedantic(run, rounds=1, iterations=1)
    # shape: workstation-class calibration puts 3 replicas in 1..10 ms
    assert 1.0 <= three <= 10.0


def test_e2_latency_nearly_flat_in_group_size(benchmark):
    def run():
        means = {}
        for n in (2, 4, 8):
            samples = dissemination_latency(n, n - 1, seed=7)
            means[n] = mean(samples)
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    # one broadcast reaches everyone: 8 replicas cost < 1.5x of 2 replicas
    assert means[8] < means[2] * 1.5


def test_e2_sequencer_host_saves_the_req_hop(benchmark):
    def run():
        fast = mean(dissemination_latency(3, 0, seed=9))
        slow = mean(dissemination_latency(3, 2, seed=9))
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fast < slow
