"""Command batching — amortizing the per-command sequencing cost.

The replica group's sequencer may drain *all* submissions waiting at the
sequencer lock into one ordered batch, which the transport marshals once
and ships to every replica.  On the multiprocess backend each command
otherwise pays its own pickle plus one queue hop per replica, so batching
under sustained load should buy real throughput; on the threaded backend
the per-command cost is just a lock + queue put, so the win is smaller.

Two workloads per (backend, mode):

- **blocking** — clients issue synchronous outs and wait for the ordered
  completion each time.  Latency-bound: clients spend almost all their
  time waiting, the sequencer rarely sees more than one queued
  submission, and batching can't help much.
- **pipelined** — clients post outs without waiting (Linda's ``out`` is
  semantically asynchronous), then the run is timed to full drain via an
  in-band quiesce.  This keeps the sequencer saturated, which is exactly
  the regime batching exists for.

The mean batch size column is read back from the runtime's own metrics
(``batch_size`` histogram) — unbatched runs must show exactly 1.0.
"""

from __future__ import annotations

import threading
import time

from repro import AGS, Op
from repro.bench import Table, save_table
from repro.core.statemachine import ExecuteAGS
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime
from repro.replication.group import CLIENT_ORIGIN

CLIENTS = 8
BLOCKING_OPS = {"threaded": 250, "multiproc": 100}  # outs per client
PIPELINED_OPS = {"threaded": 600, "multiproc": 250}
QUICK_DIVISOR = 5


def _spawn_clients(clients: int, body) -> float:
    """Run *body(c)* on `clients` threads; return wall seconds to join."""
    barrier = threading.Barrier(clients + 1)

    def worker(c: int) -> None:
        barrier.wait()
        body(c)

    threads = [
        threading.Thread(target=worker, args=(c,), name=f"bench-client-{c}")
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _warmup(rt) -> None:
    """Absorb replica startup (process spawn, imports) before timing."""
    for k in range(20):
        rt.out(rt.main_ts, "warmup", k)
    rt.group.quiesce()


def _blocking_throughput(rt, clients: int, per_client: int) -> float:
    _warmup(rt)

    def body(c: int) -> None:
        for k in range(per_client):
            rt.out(rt.main_ts, "bench", c, k)

    return clients * per_client / _spawn_clients(clients, body)


def _pipelined_throughput(rt, clients: int, per_client: int) -> float:
    _warmup(rt)
    group = rt.group

    def body(c: int) -> None:
        for k in range(per_client):
            rid = group.next_request_id()
            group.post(
                ExecuteAGS(rid, CLIENT_ORIGIN, 0, AGS.atomic(
                    Op.out(rt.main_ts, "pipe", c, k)
                ))
            )

    barrier_elapsed = _spawn_clients(clients, body)
    t0 = time.perf_counter()
    group.quiesce()  # in-band: answered only after every posted command
    drained = barrier_elapsed + (time.perf_counter() - t0)
    return clients * per_client / drained


def _measure(make_rt, name: str, div: int) -> dict[bool, dict[str, float]]:
    """{batching: {"blocking": out/s, "pipelined": out/s, "batch": mean}}."""
    results: dict[bool, dict[str, float]] = {}
    for batching in (False, True):
        rt = make_rt(batching)
        try:
            blocking = _blocking_throughput(
                rt, CLIENTS, BLOCKING_OPS[name] // div
            )
        finally:
            rt.shutdown()
        rt = make_rt(batching)
        try:
            pipelined = _pipelined_throughput(
                rt, CLIENTS, PIPELINED_OPS[name] // div
            )
            mean_batch = rt.metrics_snapshot()["histograms"]["batch_size"]["mean"]
        finally:
            rt.shutdown()
        results[batching] = {
            "blocking": blocking, "pipelined": pipelined, "batch": mean_batch,
        }
    return results


def run_benchmark(quick: bool = False) -> dict[str, dict[bool, dict[str, float]]]:
    """Measure both backends, save the report table, return raw numbers."""
    div = QUICK_DIVISOR if quick else 1
    table = Table(
        f"Command batching: out/s with {CLIENTS} concurrent clients",
        ["backend", "mode", "blocking out/s", "pipelined out/s",
         "mean batch", "pipelined speedup"],
    )
    out: dict[str, dict[bool, dict[str, float]]] = {}
    for name, make_rt in (
        ("threaded", lambda b: ThreadedReplicaRuntime(3, batching=b)),
        ("multiproc", lambda b: MultiprocessRuntime(3, batching=b)),
    ):
        res = _measure(make_rt, name, div)
        out[name] = res
        speedup = res[True]["pipelined"] / res[False]["pipelined"]
        table.add(name, "unbatched", res[False]["blocking"],
                  res[False]["pipelined"], res[False]["batch"], "")
        table.add(name, "batched", res[True]["blocking"],
                  res[True]["pipelined"], res[True]["batch"],
                  f"{speedup:.2f}x")
    table.note(
        "batching amortizes one pickle + one queue hop per replica per "
        "command into one per batch; it pays off once the sequencer is "
        "saturated (pipelined column), most on the multiproc backend"
    )
    save_table(table, "bench_batching")
    return out


def test_batching_throughput(benchmark):
    out = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    mp = out["multiproc"]
    # the headline claim: batched multiproc out-throughput beats unbatched
    assert mp[True]["pipelined"] > mp[False]["pipelined"]
    # and genuinely multi-command batches formed under pipelined fan-in
    assert mp[True]["batch"] > 1.5
    assert mp[False]["batch"] == 1.0


def main(argv=None) -> int:
    import argparse

    from repro.bench import make_result, metric, save_result

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"{QUICK_DIVISOR}x fewer ops per cell (CI smoke)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default="BENCH_batching.json",
        help="machine-readable results path (default: "
        "benchmarks/results/BENCH_batching.json)",
    )
    opts = parser.parse_args(argv)
    out = run_benchmark(quick=opts.quick)
    metrics: dict[str, dict] = {}
    for name, res in out.items():
        metrics[f"{name}_blocking_batched_out_per_s"] = metric(
            res[True]["blocking"], "higher", unit="ops/s"
        )
        metrics[f"{name}_pipelined_unbatched_out_per_s"] = metric(
            res[False]["pipelined"], "higher", unit="ops/s"
        )
        metrics[f"{name}_pipelined_batched_out_per_s"] = metric(
            res[True]["pipelined"], "higher", unit="ops/s"
        )
        metrics[f"{name}_pipelined_speedup"] = metric(
            res[True]["pipelined"] / res[False]["pipelined"], "higher"
        )
        metrics[f"{name}_mean_batch"] = metric(res[True]["batch"], "higher")
    payload = make_result(
        "batching",
        metrics,
        config={
            "clients": CLIENTS,
            "ops": {"blocking": BLOCKING_OPS, "pipelined": PIPELINED_OPS},
        },
        quick=opts.quick,
    )
    print(f"wrote {save_result(payload, opts.json)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
