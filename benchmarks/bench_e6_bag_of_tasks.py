"""E6 — the fault-tolerant bag-of-tasks under worker crashes.

Section 4's flagship paradigm.  The experiment contrasts what Sec. 2.2
diagnoses with what Sec. 4 delivers:

- **classic Linda** (single-op atomicity, no failure notification): a
  worker crashing between ``in(task)`` and ``out(result)`` silently loses
  that subtask — the computation completes *incorrectly*;
- **FT-Linda**: in-progress tuples plus the failure-tuple-driven monitor
  recycle every lost subtask — the computation always completes exactly.

We run the same workload (squares of 0..N-1) on real threads over the
LocalRuntime with 0, 1, 2 and 3 injected worker crashes, and also report
throughput scaling with worker count (no failures) to show the paradigm's
"transparent scalability" on a compute-bound workload.
"""

from __future__ import annotations

import time

from repro import LocalRuntime
from repro.baselines import PlainLindaRuntime
from repro.bench import Table, save_table
from repro.paradigms import run_bag_of_tasks

N_TASKS = 24


def compute(x: int) -> int:
    # a deliberately compute-ish task so parallelism is visible
    acc = 0
    for i in range(2000):
        acc = (acc + x * i) % 1_000_003
    return acc


def crash_schedule(k: int) -> dict[int, int]:
    """k workers crash, staggered a task apart."""
    return {w: w + 1 for w in range(k)}


def run_case(ft: bool, crashes: int) -> dict:
    runtime = LocalRuntime() if ft else PlainLindaRuntime()
    t0 = time.perf_counter()
    report = run_bag_of_tasks(
        runtime,
        list(range(N_TASKS)),
        n_workers=4,
        compute=compute,
        ft=ft,
        crash_workers=crash_schedule(crashes),
    )
    report["wall_ms"] = (time.perf_counter() - t0) * 1000.0
    return report


def test_e6_work_conservation_under_crashes(benchmark):
    def run():
        table = Table(
            f"E6: bag-of-tasks, {N_TASKS} tasks, 4 workers, injected crashes",
            ["system", "crashes", "completed", "lost", "recycled"],
        )
        rows = {}
        for crashes in (0, 1, 2, 3):
            for ft in (True, False):
                r = run_case(ft, crashes)
                name = "FT-Linda" if ft else "classic"
                rows[(name, crashes)] = r
                table.add(name, crashes, len(r["results"]), r["lost"],
                          r["recycled"])
        table.note(
            "paper Sec. 2.2/4: classic Linda loses one subtask per crashed "
            "worker; FT-Linda's monitor recycles them all"
        )
        save_table(table, "e6_bag_of_tasks")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for crashes in (0, 1, 2, 3):
        ft = rows[("FT-Linda", crashes)]
        classic = rows[("classic", crashes)]
        assert ft["lost"] == 0
        assert len(ft["results"]) == N_TASKS
        assert ft["recycled"] == crashes
        assert classic["lost"] == crashes
    # correctness of the recycled work: every payload answered exactly once
    done = sorted(p for p, _r in rows[("FT-Linda", 3)]["results"])
    assert done == list(range(N_TASKS))


def test_e6_scaling_with_workers(benchmark):
    def run():
        table = Table(
            "E6b: bag-of-tasks wall-clock scaling (no crashes)",
            ["workers", "wall ms", "speedup vs 1"],
        )
        walls = {}
        for w in (1, 2, 4, 8):
            runtime = LocalRuntime()
            t0 = time.perf_counter()
            report = run_bag_of_tasks(
                runtime, list(range(N_TASKS)), n_workers=w, compute=compute
            )
            walls[w] = (time.perf_counter() - t0) * 1000.0
            assert report["lost"] == 0
        for w in (1, 2, 4, 8):
            table.add(w, walls[w], walls[1] / walls[w])
        table.note(
            "threads + GIL: coordination overlaps but compute serializes; "
            "the load-balancing property (no idle worker while the bag is "
            "non-empty) is what this table demonstrates"
        )
        save_table(table, "e6_scaling")
        return walls

    walls = benchmark.pedantic(run, rounds=1, iterations=1)
    # with a GIL we claim no slowdown cliff, not linear speedup
    assert walls[8] < walls[1] * 2.0
