"""Ablation A5 — stable storage: logging vs replication.

The paper's Sec. 3 argues the design choice this ablation measures:
stable storage could be had by logging to disk, but "in situations where
stable values must also be shared among multiple processors — as is the
case here — replication is a more appropriate choice."  We built the
logging alternative (:mod:`repro.persist`) and measure what each costs:

- **per-operation overhead**: plain in-memory ops vs write-ahead logging
  (OS-buffered) vs logging with per-record fsync (true stable storage);
- **recovery**: log replay time as the log grows, and what compaction
  buys.

The replication side's costs are E2/E4's (one multicast, ~3 ms on the
simulated testbed); the comparison the table's note draws is the paper's:
logging is cheap *per op* on one machine (buffered) or brutally expensive
(fsync), and either way the values are trapped on that machine — only
replication gives every processor local access *and* failure resilience.
"""

from __future__ import annotations

import time

from repro import AGS, Guard, LocalRuntime, Op, formal, ref
from repro.bench import Table, save_table
from repro.core.spaces import MAIN_TS
from repro.persist import WALRuntime

N_OPS = 300


def time_ops(rt) -> float:
    """Mean microseconds per atomic increment on *rt*."""
    rt.out(MAIN_TS, "c", 0)
    incr = AGS.single(
        Guard.in_(MAIN_TS, "c", formal(int, "v")),
        [Op.out(MAIN_TS, "c", ref("v") + 1)],
    )
    t0 = time.perf_counter()
    for _ in range(N_OPS):
        rt.execute(incr)
    return (time.perf_counter() - t0) / N_OPS * 1e6


def test_a5_logging_overhead(benchmark, tmp_path):
    def run():
        table = Table(
            "A5a: per-op cost of stable storage by logging (us/op)",
            ["configuration", "us per atomic update"],
        )
        plain = time_ops(LocalRuntime())
        buffered_rt = WALRuntime(str(tmp_path / "buf.wal"), fsync=False)
        buffered = time_ops(buffered_rt)
        buffered_rt.close()
        durable_rt = WALRuntime(str(tmp_path / "dur.wal"), fsync=True)
        durable = time_ops(durable_rt)
        durable_rt.close()
        table.add("in-memory (no stability)", plain)
        table.add("WAL, OS-buffered", buffered)
        table.add("WAL, fsync per record", durable)
        table.note(
            "paper's point: per-machine logging is either not actually "
            "stable (buffered) or pays a disk sync per op; and the values "
            "remain single-host either way — replication (E2: ~3 ms/AGS "
            "simulated) shares them"
        )
        save_table(table, "ablation_wal_overhead")
        return plain, buffered, durable

    plain, buffered, durable = benchmark.pedantic(run, rounds=1, iterations=1)
    assert plain < buffered < durable
    assert durable > 5 * plain  # fsync dominates everything


def test_a5_recovery_replay(benchmark, tmp_path):
    def run():
        table = Table(
            "A5b: WAL recovery (log replay) and compaction",
            ["log records", "replay ms", "after compaction ms"],
        )
        rows = {}
        for n in (100, 1000, 5000):
            path = str(tmp_path / f"replay{n}.wal")
            rt = WALRuntime(path, fsync=False)
            for i in range(n):
                rt.out(MAIN_TS, "x", i % 50)
            rt.crash()
            t0 = time.perf_counter()
            back = WALRuntime.recover(path)
            replay_ms = (time.perf_counter() - t0) * 1000
            back.compact()
            back.crash()
            t0 = time.perf_counter()
            again = WALRuntime.recover(path)
            compact_ms = (time.perf_counter() - t0) * 1000
            assert again.replayed == 1
            again.close()
            rows[n] = (replay_ms, compact_ms)
            table.add(n, replay_ms, compact_ms)
        table.note("replay is linear in the log; a snapshot head makes "
                   "recovery O(state) instead of O(history)")
        save_table(table, "ablation_wal_recovery")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows[5000][0] > rows[100][0]  # replay grows with history
    assert rows[5000][1] < rows[5000][0]  # compaction beats full replay
