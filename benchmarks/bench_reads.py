"""The read fast path — answering ``rd``/``rdp`` from one replica.

A read-only statement cannot change replicated state, and the state-machine
approach keeps every replica identical after each ordered command — so the
ordered path's full treatment of a ``rd`` (sequencing, an N-way broadcast,
N redundant guard evaluations, completion dedup) buys nothing a single
up-to-date replica could not provide.  The replica group's read fast path
routes read-only statements to one live replica, tagged with a session
floor so the answer still reflects everything the client could have
submitted or observed (read-your-writes).

This benchmark drives a **read-heavy mix** (1 ``out`` per ``READ_MIX``
operations, the rest ``rd``) against 3 replicas, with the fast path off
(every read ordered) and on, and reports the ``rd`` throughput ratio at
two client counts.  The fast path's win is per-read cost, so it shows
largest where that cost dominates — a single client sees 2x and better
on both backends.  Under many concurrent clients the *ordered* path
amortizes its broadcasts over ever-larger sequencer batches, so the gap
narrows: the two lanes converge on different strengths (latency vs.
saturated-bus throughput), and the table shows both regimes honestly.

A separate consistency run injects a replica crash — and, on the
multiprocess backend, a recovery — mid-stream under the same mix and
asserts the surviving replicas' fingerprints still agree, exercising the
fallback ladder (miss → reroute → ordered) under faults.
"""

from __future__ import annotations

import argparse
import threading
import time

from repro import formal
from repro.bench import Table, make_result, metric, save_result, save_table
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime

CLIENT_COUNTS = (1, 4)  # per-read-cost regime vs. batch-amortized regime
FAULT_CLIENTS = 4
READS_PER_CLIENT = {"threaded": 800, "multiproc": 200}
READ_MIX = 10  # one out per READ_MIX ops; the rest are rds
N_REPLICAS = 3


def _spawn_clients(clients: int, body) -> float:
    """Run *body(c)* on `clients` threads; return wall seconds to join."""
    barrier = threading.Barrier(clients + 1)

    def worker(c: int) -> None:
        barrier.wait()
        body(c)

    threads = [
        threading.Thread(target=worker, args=(c,), name=f"bench-reader-{c}")
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _read_heavy_throughput(
    rt, clients: int, per_client: int, repeats: int = 5
) -> dict[str, float]:
    """Drive the mix; return rd/s, total ops/s and the fast-path counters.

    The mix runs ``repeats`` times and the best pass is reported — the
    standard guard against scheduler noise on a run short enough to keep
    CI time reasonable.  Warmup covers both lanes (outs absorb replica
    startup, rds absorb the read path's first-use costs) before timing.
    """
    for k in range(10):  # absorb replica startup before timing
        rt.out(rt.main_ts, "warm", k)
        rt.rd(rt.main_ts, "warm", k)
    rt.group.quiesce()
    reads_per_client = per_client
    writes_per_client = per_client // READ_MIX

    def body(c: int) -> None:
        rt.out(rt.main_ts, "key", c, 0)
        done = 0
        for k in range(reads_per_client):
            if k % READ_MIX == READ_MIX - 1 and done < writes_per_client:
                rt.out(rt.main_ts, "key", c, k)
                done += 1
            rt.rd(rt.main_ts, "key", c, formal(int))

    elapsed = min(_spawn_clients(clients, body) for _ in range(repeats))
    snap = rt.metrics_snapshot()["counters"]
    total_reads = clients * reads_per_client
    return {
        "rd_per_s": total_reads / elapsed,
        "elapsed_s": elapsed,
        "read_fastpath": snap.get("read_fastpath", 0),
        "read_fallback": snap.get("read_fallback", 0),
    }


def _consistency_under_faults(quick: bool) -> dict[str, object]:
    """Mixed read/write run with a crash (+ recovery) injected mid-stream.

    Returns the surviving replicas' convergence verdict — the proof that
    the weaker-ordered read lane never perturbs replicated state even
    while membership is churning underneath it.
    """
    per_client = 40 if quick else 120
    results: dict[str, object] = {}
    for backend, make_rt, recover in (
        ("threaded", lambda: ThreadedReplicaRuntime(n_replicas=N_REPLICAS), False),
        (
            "multiproc",
            lambda: MultiprocessRuntime(n_replicas=N_REPLICAS),
            True,
        ),
    ):
        rt = make_rt()
        try:
            mid = threading.Event()

            def body(c: int) -> None:
                for k in range(per_client):
                    rt.out(rt.main_ts, "mix", c, k)
                    got = rt.rd(rt.main_ts, "mix", c, formal(int))
                    assert got is not None
                    if k == per_client // 2:
                        mid.set()

            def fault() -> None:
                mid.wait(30.0)
                rt.crash_replica(N_REPLICAS - 1)
                if recover:
                    time.sleep(0.05)
                    rt.recover_replica(N_REPLICAS - 1)

            injector = threading.Thread(target=fault, name="fault-injector")
            injector.start()
            _spawn_clients(FAULT_CLIENTS, body)
            injector.join(60.0)
            rt.group.quiesce()
            prints = rt.fingerprints()
            results[backend] = {
                "converged": len(set(prints)) <= 1,
                "live_replicas": len(prints),
                "recovered": recover,
            }
        finally:
            rt.shutdown()
    return results


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="CI-sized run")
    ap.add_argument(
        "--json",
        metavar="OUT",
        default="BENCH_reads.json",
        help="machine-readable results path (default: "
        "benchmarks/results/BENCH_reads.json)",
    )
    args = ap.parse_args()

    table = Table(
        "Read fast path: rd throughput on a read-heavy mix "
        f"({N_REPLICAS} replicas, 1 out per {READ_MIX} ops)",
        ["backend", "clients", "read path", "rd/s", "fastpath", "fallback",
         "speedup"],
    )
    metrics: dict[str, dict] = {}

    for backend, make_rt in (
        ("threaded", ThreadedReplicaRuntime),
        ("multiproc", MultiprocessRuntime),
    ):
        per_client = READS_PER_CLIENT[backend]
        if args.quick:
            per_client //= 4
        for clients in CLIENT_COUNTS:
            rows: dict[bool, dict[str, float]] = {}
            for fastpath in (False, True):
                rt = make_rt(n_replicas=N_REPLICAS, read_fastpath=fastpath)
                try:
                    rows[fastpath] = _read_heavy_throughput(
                        rt, clients, per_client
                    )
                finally:
                    rt.shutdown()
            speedup = rows[True]["rd_per_s"] / rows[False]["rd_per_s"]
            for fastpath in (False, True):
                r = rows[fastpath]
                table.add(
                    backend,
                    str(clients),
                    "fast" if fastpath else "ordered",
                    f"{r['rd_per_s']:.0f}",
                    f"{r['read_fastpath']:.0f}",
                    f"{r['read_fallback']:.0f}",
                    f"{speedup:.2f}x" if fastpath else "1.00x",
                )
            key = f"{backend}_c{clients}"
            metrics[f"{key}_ordered_rd_per_s"] = metric(
                rows[False]["rd_per_s"], "higher", unit="rd/s"
            )
            metrics[f"{key}_fast_rd_per_s"] = metric(
                rows[True]["rd_per_s"], "higher", unit="rd/s"
            )
            metrics[f"{key}_speedup"] = metric(speedup, "higher")

    print(table.render())
    print("consistency under faults (crash mid-stream, mixed read/write):")
    faults = _consistency_under_faults(args.quick)
    for backend, verdict in faults.items():
        print(f"  {backend}: {verdict}")
        assert verdict["converged"], f"{backend} replicas diverged"
        metrics[f"{backend}_fault_converged"] = metric(
            1.0 if verdict["converged"] else 0.0, "higher", tolerance=0.01
        )

    save_table(table, "bench_reads")
    payload = make_result(
        "reads",
        metrics,
        config={
            "replicas": N_REPLICAS,
            "client_counts": list(CLIENT_COUNTS),
            "read_mix": READ_MIX,
        },
        quick=args.quick,
    )
    print(f"json -> {save_result(payload, args.json)}")


if __name__ == "__main__":
    main()
