"""E5 / Figure 17 — RPC forwarding to a tuple server.

Figure 17 of the paper shows the configuration for hosts that carry no TS
replica: "rather than requests being submitted to Consul directly from the
FT-Linda library, a remote procedure call (RPC) would be used to forward
the request to a request handler process on a tuple server.  This handler
immediately submits it to Consul's multicast service as before."

We measure end-to-end AGS latency from (a) a process on a replica host
(direct submission) and (b) a process on a replica-less client host (RPC
forwarding), over the same cluster.

Shape claims:

- the RPC configuration adds roughly one request/reply round trip plus
  two CPU service times on top of the direct path;
- the overhead is additive, not multiplicative: bigger AGS bodies do not
  widen the *relative* gap much.
"""

from __future__ import annotations

from repro.bench import Table, save_table
from repro.bench.workloads import ags_latency_samples, make_cluster, mean
from repro.core.ags import AGS, Op

N_SAMPLES = 30


def latency(n_hosts: int, host: int, n_ops: int, seed: int, n_clients: int = 0):
    cluster = make_cluster(
        n_hosts, n_clients=n_clients, seed=seed, jitter_us=150.0
    )
    samples = ags_latency_samples(
        cluster,
        host,
        lambda ts: AGS.atomic(*[Op.out(ts, "t", i) for i in range(n_ops)]),
        N_SAMPLES,
    )
    return mean(samples)


def test_e5_rpc_vs_direct(benchmark):
    def run():
        table = Table(
            "E5 (Figure 17): AGS latency, direct vs RPC-forwarded "
            "(3 replicas, virtual ms)",
            ["ops in body", "direct@server ms", "direct@other ms",
             "via RPC ms", "RPC overhead ms"],
        )
        rows = {}
        for n_ops in (1, 4, 16):
            # host 3 is the replica-less client; its tuple server is
            # replica 0 (which is also the sequencer)
            at_server = latency(3, 0, n_ops, seed=n_ops) / 1000.0
            at_other = latency(3, 2, n_ops, seed=n_ops) / 1000.0
            rpc = latency(3, 3, n_ops, seed=n_ops, n_clients=1) / 1000.0
            rows[n_ops] = (at_server, at_other, rpc)
            table.add(n_ops, at_server, at_other, rpc, rpc - at_server)
        table.note(
            "the honest pair is RPC vs direct@server: the RPC client's "
            "requests execute on the server host, plus one request/reply "
            "round trip + handler CPU"
        )
        save_table(table, "e5_rpc_variant")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for n_ops, (at_server, at_other, rpc) in rows.items():
        assert rpc > at_server  # forwarding adds a round trip over direct
        # the overhead is a bounded additive hop (request + reply + two CPU
        # service times), a handful of milliseconds at workstation costs
        assert 0.5 < rpc - at_server < 8.0
    # additive, not multiplicative: absolute overhead roughly constant
    o1 = rows[1][2] - rows[1][0]
    o16 = rows[16][2] - rows[16][0]
    assert o16 < o1 * 2.5
