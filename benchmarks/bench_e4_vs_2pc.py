"""E4 — single-multicast AGS vs two-phase-commit transactions.

The paper's central efficiency claim (abstract + Sec. 6): FT-Linda's
"strategy allows an efficient implementation in which only a single
multicast message is needed for each atomic collection of tuple space
operations", whereas transaction-style designs (PLinda, Xu–Liskov) are
"expensive, requiring multiple rounds of message passing between the
processors hosting replicas" and "all the designs discussed in this
section require multiple messages to update the TS replicas."

Both systems run the same atomic fetch-and-increment workload over the
same simulated 10 Mb Ethernet and the same CPU cost model; we compare

- **frames per committed update** (wire messages),
- **latency per update** (virtual ms),
- behavior under **contention** (concurrent clients on one variable),

sweeping the replica count.  Expected shape: FT-Linda stays at ~2 frames
(REQ + ORD broadcast; 1 when the client sits on the sequencer) and flat
latency; 2PC needs ~N+1 frames, latency grows with N, and contention
multiplies its cost through aborts/retries while FT-Linda's total order
serializes contended updates with zero aborts.
"""

from __future__ import annotations

from repro.baselines import TwoPhaseCluster, TwoPhaseConfig
from repro.bench import Table, save_table
from repro.bench.workloads import incr_statement, make_cluster, mean
from repro.core.tuples import Pattern, formal

N_UPDATES = 30


# --------------------------------------------------------------------------- #
# drivers
# --------------------------------------------------------------------------- #


def ftlinda_run(n_hosts: int, n_clients: int, seed: int) -> dict:
    cluster = make_cluster(n_hosts, seed=seed)
    done = []

    def init(view):
        yield view.out(view.main_ts, "count", 0)

    p = cluster.spawn(0, init)
    cluster.run_until(p.finished, limit=60_000_000.0)
    frames0 = cluster.segment.stats.frames
    t_start = cluster.sim.now
    lat: list[float] = []

    def client(view):
        for _ in range(N_UPDATES):
            t0 = view.sim.now
            yield view.execute(incr_statement(view.main_ts))
            lat.append(view.sim.now - t0)
        done.append(1)

    procs = [
        cluster.spawn((i + 1) % n_hosts, client) for i in range(n_clients)
    ]
    cluster.run_until_all(procs, limit=600_000_000.0)
    total = n_clients * N_UPDATES
    final = cluster.replica(0).space_tuples(cluster.main_ts)
    assert ("count", total) in final, "lost updates in FT-Linda?!"
    return {
        "frames_per_update": (cluster.segment.stats.frames - frames0) / total,
        "latency_us": mean(lat),
        "elapsed_us": cluster.sim.now - t_start,
        "aborts": 0,
    }


def twopc_run(n_hosts: int, n_clients: int, seed: int) -> dict:
    cluster = TwoPhaseCluster(TwoPhaseConfig(n_hosts=n_hosts, seed=seed))
    cluster.seed_tuple("count", 0)
    frames0 = cluster.segment.stats.frames
    t_start = cluster.sim.now
    lat: list[float] = []
    pattern = [Pattern(("count", formal(int, "v")))]

    def puts(bindings):
        return [("count", bindings[0]["v"] + 1)]

    # issue updates client-by-client but concurrently across clients:
    # client c runs its updates back to back, all clients in parallel
    pending = []
    for c in range(n_clients):
        host = (c + 1) % n_hosts
        pending.append((host, N_UPDATES))

    def launch(host: int, remaining: int, started_at: float) -> None:
        ev = cluster.update(host, pattern, puts)

        def on_done(_t, host=host, remaining=remaining, started_at=started_at):
            lat.append(cluster.sim.now - started_at)
            if remaining > 1:
                launch(host, remaining - 1, cluster.sim.now)

        ev.add_waiter(on_done)

    for host, n in pending:
        launch(host, n, cluster.sim.now)
    total = n_clients * N_UPDATES
    # run until all committed
    limit = cluster.sim.now + 600_000_000.0
    while cluster.stats.commits < total:
        if cluster.sim.now > limit or not cluster.sim.step():
            raise RuntimeError(
                f"2PC run stalled at {cluster.stats.commits}/{total}"
            )
    # let the final COMMIT broadcast reach every participant before reading
    cluster.sim.run(until=cluster.sim.now + 100_000)
    m = cluster.store_of(0).find(
        Pattern(("count", formal(int, "v"))), remove=False
    )
    assert m.binding["v"] == total
    assert cluster.converged()
    return {
        "frames_per_update": (cluster.segment.stats.frames - frames0) / total,
        "latency_us": mean(lat),
        "elapsed_us": cluster.sim.now - t_start,
        "aborts": cluster.stats.aborts,
    }


# --------------------------------------------------------------------------- #
# the experiment
# --------------------------------------------------------------------------- #


def test_e4_uncontended_sweep(benchmark):
    def run():
        table = Table(
            "E4: atomic update cost, FT-Linda AGS vs 2PC transactions "
            "(1 client, virtual time)",
            ["replicas", "system", "frames/update", "latency ms", "aborts"],
        )
        results = {}
        for n in (2, 3, 4, 6, 8):
            ft = ftlinda_run(n, 1, seed=n)
            pc = twopc_run(n, 1, seed=n)
            results[n] = (ft, pc)
            table.add(n, "FT-Linda", ft["frames_per_update"],
                      ft["latency_us"] / 1000.0, ft["aborts"])
            table.add(n, "2PC", pc["frames_per_update"],
                      pc["latency_us"] / 1000.0, pc["aborts"])
        table.note(
            "paper claim: one multicast per AGS vs 'multiple rounds of "
            "message passing' for commit protocols"
        )
        save_table(table, "e4_vs_2pc_uncontended")
        # figure-shaped artifact: the latency crossover
        from repro.bench.figures import ascii_chart, save_chart

        ns = sorted(results)
        chart = ascii_chart(
            "Figure E4: atomic-update latency vs replica count",
            ns,
            {
                "FT-Linda": [results[n][0]["latency_us"] / 1000.0 for n in ns],
                "2PC": [results[n][1]["latency_us"] / 1000.0 for n in ns],
            },
            x_label="replicas",
            y_label="latency (virtual ms)",
        )
        save_chart(chart, "fig_e4_crossover")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, (ft, pc) in results.items():
        # FT-Linda: REQ + ORD = 2 frames regardless of N
        assert ft["frames_per_update"] <= 2.01
        # 2PC: prepare bcast + (N-1) votes + commit bcast ≈ N+1 frames
        assert pc["frames_per_update"] >= n
        assert pc["frames_per_update"] > ft["frames_per_update"]
    # crossover/growth: the gap widens with N
    gap2 = results[2][1]["frames_per_update"] - results[2][0]["frames_per_update"]
    gap8 = results[8][1]["frames_per_update"] - results[8][0]["frames_per_update"]
    assert gap8 > gap2


def test_e4_contended(benchmark):
    def run():
        table = Table(
            "E4b: contended atomic updates, 3 replicas, 3 concurrent clients",
            ["system", "frames/update", "mean latency ms", "aborts",
             "total elapsed ms"],
        )
        ft = ftlinda_run(3, 3, seed=42)
        pc = twopc_run(3, 3, seed=42)
        table.add("FT-Linda", ft["frames_per_update"],
                  ft["latency_us"] / 1000.0, ft["aborts"],
                  ft["elapsed_us"] / 1000.0)
        table.add("2PC", pc["frames_per_update"],
                  pc["latency_us"] / 1000.0, pc["aborts"],
                  pc["elapsed_us"] / 1000.0)
        table.note(
            "the total order serializes contended updates for free; locks "
            "abort and retry"
        )
        save_table(table, "e4_vs_2pc_contended")
        return ft, pc

    ft, pc = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ft["aborts"] == 0
    assert pc["aborts"] > 0
    assert pc["elapsed_us"] > ft["elapsed_us"]
