"""E1 / Table 1 — single-processor cost of tuple-space operations.

The paper's Table 1 measures "only the overhead of tuple processing on a
single processor": the base cost of processing an AGS plus "the marginal
cost of including different types of in or out operations in the body",
on two CPUs (Sun-3/60 and i386).  We reproduce the same structure on this
host: a base (empty ``true =>``) statement, then statements adding one
operation of each type, reporting total and marginal microseconds.

Shape expectations (what should hold even though the absolute numbers are
this machine's, not a 1993 workstation's):

- the base AGS cost dominates; each additional op costs a fraction of it;
- ``out`` is the cheapest op; matching ops cost more;
- matching with typed formals ≈ matching with all actuals (both are one
  indexed bucket probe); untyped formals cost more (bucket scan);
- a failing ``inp`` costs no more than a succeeding one.
"""

from __future__ import annotations

import pytest

from repro import AGS, Guard, LocalRuntime, Op, formal, ref
from repro.bench import Table, save_table
from repro.core.spaces import MAIN_TS

ROUNDS = 300
INNER = 20


def _bench_stmt(benchmark, make_runtime, stmt, *, refill=None):
    """Measure executing *stmt* INNER times per round on a fresh runtime."""

    def setup():
        rt = make_runtime()
        return (rt,), {}

    def run(rt):
        ex = rt.execute
        for _ in range(INNER):
            ex(stmt)
            if refill is not None:
                refill(rt)

    benchmark.pedantic(run, setup=setup, rounds=ROUNDS, warmup_rounds=5)
    # per-statement microseconds (each round executes INNER statements,
    # plus INNER refills we deliberately do not subtract here — refill
    # variants are compared against a refill-including baseline below)
    return benchmark.stats.stats.mean * 1e6 / INNER


def _fresh(seed_tuples=0):
    def make():
        rt = LocalRuntime()
        for i in range(seed_tuples):
            rt.out(MAIN_TS, "seed", i)
        return rt

    return make


class TestTable1:
    """Each test measures one Table-1 row; the report test assembles it."""

    results: dict[str, float] = {}

    def test_base_null_ags(self, benchmark):
        stmt = AGS.single(Guard.true(), [])
        self.results["base <true => >"] = _bench_stmt(benchmark, _fresh(), stmt)

    def test_out_three_fields(self, benchmark):
        stmt = AGS.atomic(Op.out(MAIN_TS, "chan", 1, 2.0))
        self.results["+ out(3 fields)"] = _bench_stmt(benchmark, _fresh(), stmt)

    def test_in_all_actuals(self, benchmark):
        stmt = AGS.single(Guard.in_(MAIN_TS, "seed", 0), [Op.out(MAIN_TS, "seed", 0)])
        self.results["+ in(actuals)+out"] = _bench_stmt(
            benchmark, _fresh(seed_tuples=1), stmt
        )

    def test_in_typed_formal(self, benchmark):
        stmt = AGS.single(
            Guard.in_(MAIN_TS, "seed", formal(int, "v")),
            [Op.out(MAIN_TS, "seed", ref("v"))],
        )
        self.results["+ in(?typed)+out"] = _bench_stmt(
            benchmark, _fresh(seed_tuples=1), stmt
        )

    def test_in_untyped_formal(self, benchmark):
        stmt = AGS.single(
            Guard.in_(MAIN_TS, "seed", formal(object, "v")),
            [Op.out(MAIN_TS, "seed", ref("v"))],
        )
        self.results["+ in(?untyped)+out"] = _bench_stmt(
            benchmark, _fresh(seed_tuples=1), stmt
        )

    def test_rd_typed_formal(self, benchmark):
        stmt = AGS.single(Guard.rd(MAIN_TS, "seed", formal(int)), [])
        self.results["+ rd(?typed)"] = _bench_stmt(
            benchmark, _fresh(seed_tuples=1), stmt
        )

    def test_inp_hit(self, benchmark):
        stmt = AGS.single(
            Guard.inp(MAIN_TS, "seed", formal(int, "v")),
            [Op.out(MAIN_TS, "seed", ref("v"))],
        )
        self.results["+ inp(hit)+out"] = _bench_stmt(
            benchmark, _fresh(seed_tuples=1), stmt
        )

    def test_inp_miss(self, benchmark):
        stmt = AGS.single(Guard.inp(MAIN_TS, "absent", formal(int)), [])
        self.results["+ inp(miss)"] = _bench_stmt(
            benchmark, _fresh(seed_tuples=1), stmt
        )

    def test_move_ten_tuples(self, benchmark):
        def make():
            rt = LocalRuntime()
            rt._aux = rt.create_space("aux")  # type: ignore[attr-defined]
            for i in range(10):
                rt.out(MAIN_TS, "mv", i)
            return rt

        def run(rt):
            aux = rt._aux  # type: ignore[attr-defined]
            for _ in range(INNER // 2):
                rt.execute(AGS.atomic(Op.move(MAIN_TS, aux, "mv", formal(int))))
                rt.execute(AGS.atomic(Op.move(aux, MAIN_TS, "mv", formal(int))))

        benchmark.pedantic(
            run, setup=lambda: ((make(),), {}), rounds=ROUNDS, warmup_rounds=5
        )
        self.results["+ move(10 tuples)"] = (
            benchmark.stats.stats.mean * 1e6 / INNER
        )

    def test_six_op_body(self, benchmark):
        body = [Op.out(MAIN_TS, "b", i) for i in range(5)]
        body.append(Op.in_(MAIN_TS, "b", formal(int)))
        stmt = AGS.single(Guard.true(), body)
        self.results["6-op body"] = _bench_stmt(benchmark, _fresh(), stmt)

    def test_report(self, benchmark):
        """Assemble the Table-1-shaped report from the measured rows."""
        benchmark.pedantic(lambda: None, rounds=1)  # keep --benchmark-only happy
        if not self.results:
            pytest.skip("benchmark rows did not run")
        base = self.results.get("base <true => >")
        table = Table(
            "Table 1 (E1): FT-Linda TS operation costs, single processor "
            "(this host)",
            ["statement", "total us", "marginal us vs base"],
        )
        for label, us in self.results.items():
            marginal = "" if base is None or label.startswith("base") else us - base
            table.add(label, us, marginal)
        table.note(
            "paper: Sun-3/60 and i386 columns; shape to compare: base cost "
            "dominates, out cheapest, matching ops moderate, untyped "
            "formals > typed formals, inp miss <= inp hit"
        )
        save_table(table, "table1_op_costs")
        # shape assertions
        if base is not None:
            assert self.results["+ out(3 fields)"] < self.results["+ in(?typed)+out"]
            assert (
                self.results["+ in(?typed)+out"]
                <= self.results["+ in(?untyped)+out"] * 1.25
            )
