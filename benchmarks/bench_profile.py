"""Sampling-profiler overhead — what continuous profiling costs.

The profiler's acceptance bar mirrors the flight recorder's: **zero**
overhead when off and **cheap enough to leave on** at the default rate.
Off-path cost is structural, not statistical: when no profiler is
running, the only residue is one dict store per thread start
(``register_thread``) — there is no per-operation branch at all, so the
"off" configuration here is byte-for-byte the seed hot path.  The
enabled path is a sampler *thread* walking ``sys._current_frames()``
at ``DEFAULT_HZ`` (97 Hz, prime, so it cannot phase-lock with periodic
work); the workload threads never see it except through GIL pressure.

Measured as blocking out-throughput with concurrent clients on both
real backends, three configurations each:

- **off**  — profiling never started (the seed behaviour);
- **on**   — ``start_profiling()`` at the default 97 Hz; on the
  multiprocess backend this also runs one sampler per replica process,
  driven over the in-band query lane;
- **hot**  — 997 Hz, ~10x the default rate, showing the cost scales
  with the sampling rate and nothing else.

The off→on delta is the headline: the committed baseline holds it
within the <5% acceptance bound (reported tolerance is looser because
blocking round trips are latency-bound and scheduler noise dominates).
"""

from __future__ import annotations

import threading
import time

from repro.bench import Table, save_table
from repro.obs.profile import DEFAULT_HZ
from repro.parallel import MultiprocessRuntime, ThreadedReplicaRuntime

CLIENTS = 8
OPS = {"threaded": 250, "multiproc": 100}  # blocking outs per client
QUICK_DIVISOR = 5
HOT_HZ = 997.0
#: Repeats per (backend, config) cell, best-of.  Blocking round trips are
#: latency-bound, so scheduler interference only ever *lowers* a
#: measurement — the max over fresh runtimes is the low-noise estimator.
REPEATS = 3


def _spawn_clients(clients: int, body) -> float:
    barrier = threading.Barrier(clients + 1)

    def worker(c: int) -> None:
        barrier.wait()
        body(c)

    threads = [
        threading.Thread(target=worker, args=(c,), name=f"bench-client-{c}")
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _throughput(rt, per_client: int) -> float:
    for k in range(20):  # absorb replica startup before timing
        rt.out(rt.main_ts, "warmup", k)
    rt.quiesce()

    def body(c: int) -> None:
        for k in range(per_client):
            rt.out(rt.main_ts, "bench", c, k)

    return CLIENTS * per_client / _spawn_clients(CLIENTS, body)


CONFIGS = [("off", None), ("on", DEFAULT_HZ), ("hot", HOT_HZ)]


def run_benchmark(quick: bool = False) -> dict[str, dict[str, float]]:
    """Measure both backends, save the report table, return raw numbers."""
    div = QUICK_DIVISOR if quick else 1
    table = Table(
        f"Sampling-profiler overhead: blocking out/s, {CLIENTS} clients",
        ["backend", "profiling", "out/s", "samples", "vs off"],
    )
    out: dict[str, dict[str, float]] = {}
    for name, make_rt in (
        ("threaded", lambda: ThreadedReplicaRuntime(3)),
        ("multiproc", lambda: MultiprocessRuntime(3)),
    ):
        per = OPS[name] // div
        repeats = 1 if quick else REPEATS
        rates: dict[str, float] = {}
        for label, hz in CONFIGS:
            best, samples = 0.0, 0
            for _ in range(repeats):
                rt = make_rt()
                try:
                    if hz is not None:
                        rt.start_profiling(hz)
                    rate = _throughput(rt, per)
                    got = sum(rt.stop_profiling().values()) if hz else 0
                finally:
                    rt.shutdown()
                if rate > best:
                    best, samples = rate, got
            rates[label] = best
            table.add(
                name, label, best, samples,
                f"{best / rates['off']:.2f}x",
            )
        out[name] = rates
    table.note(
        "off-path cost is structural zero (no per-op branch; one dict "
        f"store per thread start); 'on' samples every thread at "
        f"{DEFAULT_HZ:g} Hz, 'hot' at {HOT_HZ:g} Hz — multiproc rows "
        "include one sampler per replica process; each cell is the best "
        f"of {1 if quick else REPEATS} fresh-runtime repeats (blocking "
        "round trips are latency-bound, so interference only lowers a "
        "measurement)"
    )
    save_table(table, "bench_profile")
    return out


def test_profile_overhead(benchmark):
    out = benchmark.pedantic(
        run_benchmark, kwargs={"quick": True}, rounds=1, iterations=1
    )
    for rates in out.values():
        # profiling at the default rate must stay within 25% of the
        # unprofiled throughput even under CI scheduler noise; the
        # committed full-size baseline is what documents the <5% claim
        assert rates["on"] > 0.75 * rates["off"], rates


def main(argv=None) -> int:
    import argparse

    from repro.bench import make_result, metric, save_result

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help=f"{QUICK_DIVISOR}x fewer ops per cell (CI smoke)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default="BENCH_profile.json",
        help="machine-readable results path (default: "
        "benchmarks/results/BENCH_profile.json)",
    )
    opts = parser.parse_args(argv)
    out = run_benchmark(quick=opts.quick)
    metrics: dict[str, dict] = {}
    for name, rates in out.items():
        metrics[f"{name}_off_out_per_s"] = metric(
            rates["off"], "higher", unit="ops/s"
        )
        metrics[f"{name}_on_out_per_s"] = metric(
            rates["on"], "higher", unit="ops/s"
        )
        # the acceptance headline: throughput while profiling at the
        # default rate as a fraction of unprofiled throughput
        metrics[f"{name}_on_vs_off"] = metric(
            rates["on"] / rates["off"], "higher", tolerance=0.15
        )
        metrics[f"{name}_hot_vs_off"] = metric(
            rates["hot"] / rates["off"], "higher", tolerance=0.20
        )
    payload = make_result(
        "profile",
        metrics,
        config={
            "clients": CLIENTS,
            "ops": OPS,
            "default_hz": DEFAULT_HZ,
            "hot_hz": HOT_HZ,
            "repeats": 1 if opts.quick else REPEATS,
        },
        quick=opts.quick,
    )
    print(f"wrote {save_result(payload, opts.json)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
