#!/usr/bin/env python3
"""A guided tour of the protocol stack, narrated by the tracer.

Runs a tiny cluster through the full lifecycle — normal ordering,
sequencer crash and takeover, restart and state transfer — and prints the
structured event timeline each phase produced.  Useful for understanding
*how* the implementation realizes the paper's guarantees, layer by layer.

Run:  python examples/protocol_tour.py
"""

from repro import formal
from repro.consul import ClusterConfig, SimCluster
from repro.sim.trace import Tracer


def banner(title: str) -> None:
    print(f"\n━━━ {title} " + "━" * max(0, 60 - len(title)))


def main() -> None:
    cluster = SimCluster(ClusterConfig(n_hosts=3, seed=7))
    tracer = Tracer().attach(cluster)

    # ---- phase 1: one out(), totally ordered --------------------------- #
    banner("phase 1: one out() from host 2 (host 0 is the sequencer)")

    def client(view):
        yield view.out(view.main_ts, "greeting", "hello")

    mark = cluster.sim.now
    p = cluster.spawn(2, client)
    cluster.run_until(p.finished, limit=60_000_000)
    print(tracer.render(since=mark, layer="ord"))
    print("  → one sequence event at host 0, one delivery per host.")

    # ---- phase 2: crash the sequencer ------------------------------------ #
    banner("phase 2: crash host 0; host 1 takes the ordering over")
    mark = cluster.sim.now
    cluster.crash(0)
    cluster.settle(2_000_000)
    print(tracer.render(since=mark, layer="mem"))
    print(tracer.render(since=mark, layer="ord", event="start_takeover_sync"))
    print("  → suspicion on both survivors, ONE ordered exclusion "
          "(announce-leader dedup), takeover sync at host 1.")

    def read_failure(view):
        t = yield view.rd(view.main_ts, "ft_failure", formal(int))
        return t

    p = cluster.spawn(1, read_failure)
    cluster.run_until(p.finished, limit=60_000_000)
    print(f"  failure tuple in tuple space: {p.finished.value}")

    # ---- phase 3: keep working on the survivors --------------------------- #
    banner("phase 3: the group keeps serving (host 1 now sequences)")
    mark = cluster.sim.now

    def writer(view):
        for i in range(2):
            yield view.out(view.main_ts, "post-crash", i)

    p = cluster.spawn(2, writer)
    cluster.run_until(p.finished, limit=60_000_000)
    print(tracer.render(since=mark, layer="ord", event="sequence"))

    # ---- phase 4: restart and state transfer ------------------------------- #
    banner("phase 4: restart host 0 — rejoin + snapshot")
    mark = cluster.sim.now
    cluster.recover(0)
    cluster.run_until(cluster.replica(0).recovered_event, limit=120_000_000)
    print(tracer.render(since=mark, layer="mem"))
    print(tracer.render(since=mark, layer="replica"))
    cluster.settle(2_000_000)
    prints = [cluster.replica(h).stable_fingerprint() for h in range(3)]
    print(f"  → all three replicas identical again: {len(set(prints)) == 1}")

    banner("totals")
    print(f"  events traced : {len(tracer)}")
    s = cluster.segment.stats.snapshot()
    print(f"  wire          : {s['frames']} frames "
          f"({s['broadcast_frames']} broadcasts), {s['bytes']} bytes")


if __name__ == "__main__":
    main()
