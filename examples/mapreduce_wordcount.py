#!/usr/bin/env python3
"""MapReduce-style word count, built from FT-Linda paradigms.

Demonstrates how the paper's building blocks compose into a larger
application:

- **map phase**: a fault-tolerant bag-of-tasks over document chunks —
  one mapper crashes mid-chunk and the monitor recycles its work;
- **shuffle**: mappers emit ``("wc", word, count)`` tuples; tuple space
  *is* the shuffle — associative matching groups by word for free;
- **reduce phase**: reducers fold counts with atomic guarded statements
  (``< in(wc,w,?a) => ... >`` + accumulate), so concurrent reducers never
  lose increments;
- **coordination**: a pending-counter distributed variable detects
  completion.

Run:  python examples/mapreduce_wordcount.py
"""

from collections import Counter

from repro import AGS, Branch, Guard, LocalRuntime, Op, formal, ref
from repro.paradigms import DistributedVariable, run_bag_of_tasks

DOC = (
    "the tuple space is the heart of linda "
    "the stable tuple space is the heart of ft linda "
    "atomic guarded statements make the tuple space fault tolerant "
    "the bag of tasks rides on the tuple space"
).split()

CHUNK = 8


def main() -> None:
    rt = LocalRuntime()
    ts = rt.main_ts
    chunks = [tuple(DOC[i : i + CHUNK]) for i in range(0, len(DOC), CHUNK)]

    # ---------------- map phase: FT bag-of-tasks over chunks ------------- #
    def map_chunk(words: tuple) -> tuple:
        # emit (word, 1) pairs, pre-combined per chunk
        counts = Counter(words)
        return tuple(sorted(counts.items()))

    report = run_bag_of_tasks(
        rt, chunks, n_workers=3, compute=map_chunk,
        ft=True, crash_workers={0: 1},  # mapper 0 dies after one chunk
    )
    assert report["lost"] == 0
    print(f"map phase: {len(report['results'])} chunks mapped, "
          f"{report['recycled']} crashed mapper recycled")

    # ---------------- shuffle: emit word-count tuples --------------------- #
    emitted = 0
    for _chunk, pairs in report["results"]:
        for word, count in pairs:
            rt.out(ts, "wc", word, count)
            emitted += 1
    pending = DistributedVariable(rt, ts, "pending")
    pending.init(emitted)
    print(f"shuffle: {emitted} partial counts in tuple space")

    # ---------------- reduce: concurrent atomic folding ------------------- #
    # each reducer repeatedly withdraws one partial count and folds it
    # into the word's total; the fold is ONE atomic disjunction — update
    # the existing total or create it, whichever matches
    def reduce_one(proc) -> bool:
        take = proc.inp(ts, "wc", formal(str), formal(int))
        if take is None:
            return False
        word, n = take[1], take[2]
        proc.execute(AGS([
            Branch(
                Guard.in_(ts, "total", word, formal(int, "a")),
                [Op.out(ts, "total", word, ref("a") + n)],
            ),
            Branch(Guard.true(), [Op.out(ts, "total", word, n)]),
        ]))
        DistributedVariable(proc, ts, "pending").add(-1)
        return True

    def reducer_loop(proc):
        folded = 0
        while reduce_one(proc):
            folded += 1
        return folded

    handles = [rt.eval_(reducer_loop) for _ in range(3)]
    folded = sum(h.join(timeout=30) for h in handles)
    # late arrivals are impossible here (map finished), so drain once more
    while reduce_one(rt):
        folded += 1
    assert pending.value() == 0
    print(f"reduce phase: {folded} partial counts folded by 3 reducers")

    # ---------------- verify against a sequential count -------------------- #
    expected = Counter(DOC)
    totals = {}
    while True:
        t = rt.inp(ts, "total", formal(str), formal(int))
        if t is None:
            break
        totals[t[1]] = t[2]
    assert totals == dict(expected), (totals, expected)
    top = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    print("top words:", ", ".join(f"{w}={c}" for w, c in top))
    print("word counts exact despite the crashed mapper")


if __name__ == "__main__":
    main()
