#!/usr/bin/env python3
"""Running a textual FT-lcc program (examples/worker.ftl).

The paper's programs are C with embedded FT-Linda syntax, preprocessed by
FT-lcc into request blocks.  This example loads the statement side of a
bag-of-tasks worker from ``worker.ftl``, binds its declared spaces to a
runtime, and drives the computation through the compiled statements —
including the monitor's ``recycle`` statement after a simulated crash.

Run:  python examples/ftl_program_worker.py
"""

import pathlib

from repro import LocalRuntime, formal
from repro.lcc import compile_program


def main() -> None:
    source = (pathlib.Path(__file__).parent / "worker.ftl").read_text()
    rt = LocalRuntime()
    prog = compile_program(source).bind(rt)
    bag, in_progress, results = (
        prog.handles["bag"], prog.handles["prog"], prog.handles["results"]
    )

    for i in range(6):
        rt.out(bag, "task", i)
    print(f"seeded {rt.space_size(bag)} tasks; statements:", prog.names())

    # a worker that crashes while holding its third task
    done = 0
    while True:
        res = rt.execute(prog.statement("poll"))
        if res.fired == 1:
            break  # bag empty
        t = res["t"]
        if done == 2:
            print(f"worker 'crashes' holding task {t} "
                  f"(in-progress: {rt.space_size(in_progress)})")
            break
        rt.execute(prog.statement("finish", t=t, r=t * t))
        done += 1

    # the monitor recycles the crashed worker's in-progress subtasks
    rt.execute(prog.statement("recycle"))
    print(f"recycled; bag has {rt.space_size(bag)} tasks again")

    # a fresh worker drains the rest
    while True:
        res = rt.execute(prog.statement("poll"))
        if res.fired == 1:
            break
        t = res["t"]
        rt.execute(prog.statement("finish", t=t, r=t * t))
        done += 1

    got = sorted(
        t[1] for t in rt.space_tuples(results) if t[0] == "result"
    )
    print(f"results for tasks {got} — all six, exactly once")
    assert got == list(range(6))
    # the pattern signatures FT-lcc cataloged for this program
    print("signature catalog:", prog.catalog.signatures())


if __name__ == "__main__":
    main()
