#!/usr/bin/env python3
"""Jacobi iteration (1-D heat diffusion) with barrier-synchronized phases.

The classic Linda-style numeric kernel: the grid lives in tuple space as
``("cell", generation, index, value)`` tuples, each worker owns a slice,
and a reusable tuple-space barrier separates the generations.  Neighbor
values cross slice boundaries through tuple space itself — no other
communication channel exists.

Every barrier arrival is one atomic guarded statement, so the phase
structure has no counter-crash window (see the Barrier paradigm docs).

Run:  python examples/jacobi_heat.py
"""

from repro import LocalRuntime, formal
from repro.paradigms import Barrier

N = 24          # grid points
WORKERS = 3
ITERS = 30


def main() -> None:
    rt = LocalRuntime()
    ts = rt.main_ts
    grid = rt.create_space("grid")

    # initial condition: a hot spike in the middle of a cold rod
    for i in range(N):
        rt.out(grid, "cell", 0, i, 100.0 if i == N // 2 else 0.0)

    barrier = Barrier(rt, ts, WORKERS)
    barrier.setup()
    chunk = N // WORKERS

    def worker(proc, w):
        lo, hi = w * chunk, (w + 1) * chunk
        for gen in range(ITERS):
            new = {}
            for i in range(lo, hi):
                left = proc.rd(grid, "cell", gen, max(i - 1, 0), formal(float))[3]
                mid = proc.rd(grid, "cell", gen, i, formal(float))[3]
                right = proc.rd(grid, "cell", gen, min(i + 1, N - 1),
                                formal(float))[3]
                new[i] = 0.25 * left + 0.5 * mid + 0.25 * right
            for i, v in new.items():
                proc.out(grid, "cell", gen + 1, i, v)
            barrier.arrive(proc)
            # retire our slice of the old generation (keeps the space lean)
            for i in range(lo, hi):
                proc.in_(grid, "cell", gen, i, formal(float))
        return sum(new.values())

    handles = [rt.eval_(worker, w) for w in range(WORKERS)]
    for h in handles:
        h.join(timeout=120)

    final = [
        rt.rd(grid, "cell", ITERS, i, formal(float))[3] for i in range(N)
    ]
    total = sum(final)
    print(f"after {ITERS} iterations the spike diffused into:")
    peak = max(final)
    for i in range(0, N, 2):
        bar = "#" * int(40 * final[i] / peak) if peak else ""
        print(f"  cell {i:2d}  {final[i]:7.3f}  {bar}")
    print(f"heat conserved: {total:.3f} (started with 100.0; the clamped "
          "boundary stencil conserves mass)")
    assert abs(total - 100.0) < 1e-6
    # exactly one generation remains in the space
    assert rt.space_size(grid) == N


if __name__ == "__main__":
    main()
