#!/usr/bin/env python3
"""Fault-tolerant divide and conquer: counting primes under crashes.

Implements the paper's Sec. 4.1 paradigm on a classic workload: count the
primes below N by recursively splitting the range.  The pending-count and
the accumulator are updated inside the same atomic guarded statements
that retire subtasks, so the count is exact even though a worker crashes
mid-computation and its subtasks are recycled.

Run:  python examples/primes_divide_conquer.py
"""

from repro import LocalRuntime
from repro.paradigms import run_divide_conquer

N = 2000


def is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    d = 3
    while d * d <= n:
        if n % d == 0:
            return False
        d += 2
    return True


def count_primes(rng: tuple[int, int]) -> int:
    return sum(1 for n in range(rng[0], rng[1]) if is_prime(n))


def main() -> None:
    expected = count_primes((0, N))
    print(f"ground truth: {expected} primes below {N}")

    report = run_divide_conquer(
        LocalRuntime(),
        (0, N),
        n_workers=4,
        is_small=lambda t: t[1] - t[0] <= 128,
        solve=count_primes,
        split=lambda t: [
            (t[0], (t[0] + t[1]) // 2),
            ((t[0] + t[1]) // 2, t[1]),
        ],
        combine_name="prime_add",
        combine=lambda a, b: a + b,
        identity=0,
        crash_workers={0: 3},  # worker 0 dies holding its 4th subtask
    )
    print(f"divide & conquer result: {report['result']} "
          f"(leaves solved: {report['solved']}, "
          f"crashed workers recycled: {report['recycled']})")
    assert report["result"] == expected, "work was lost or double-counted!"
    print("exact despite the crash — subtask recycling worked")


if __name__ == "__main__":
    main()
