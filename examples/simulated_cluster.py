#!/usr/bin/env python3
"""A simulated network of FT-Linda workstations: crash, takeover, rejoin.

Reproduces the paper's deployment — replicated stable tuple space over
Consul's atomic multicast on a 10 Mb Ethernet — as a deterministic
discrete-event simulation, then walks through the full failure lifecycle:

1. three replicas serve atomic increments from all hosts;
2. the *sequencer* host crashes mid-stream; the next host takes over the
   total order; the failure tuple appears in tuple space;
3. the crashed host restarts, multicasts RESTART, rejoins the view and
   receives a state snapshot;
4. all three replicas are bit-identical again.

Run:  python examples/simulated_cluster.py
"""

from repro import AGS, FAILURE_TAG, Guard, Op, formal, ref
from repro.consul import ClusterConfig, SimCluster

LIMIT = 120_000_000.0  # virtual microseconds


def main() -> None:
    cluster = SimCluster(ClusterConfig(n_hosts=3, seed=2026))
    ms = lambda: f"t={cluster.sim.now / 1000:8.1f}ms"

    def init(view):
        yield view.out(view.main_ts, "count", 0)

    def incr(view, times):
        stmt = AGS.single(
            Guard.in_(view.main_ts, "count", formal(int, "v")),
            [Op.out(view.main_ts, "count", ref("v") + 1)],
        )
        for _ in range(times):
            yield view.execute(stmt)

    p = cluster.spawn(0, init)
    cluster.run_until(p.finished, limit=LIMIT)
    print(f"{ms()}  counter initialized; sequencer is host 0")

    # increments from every host, concurrently
    procs = [cluster.spawn(h, incr, 5) for h in range(3)]
    cluster.run(until=cluster.sim.now + 20_000)

    print(f"{ms()}  crashing host 0 (the sequencer) mid-stream")
    cluster.crash(0)
    cluster.run_until_all(procs[1:], limit=LIMIT)
    cluster.settle(2_000_000)
    print(f"{ms()}  host 1 took over the total order; "
          f"view is now {sorted(cluster.membership(1).view)}")

    def read_failure(view):
        t = yield view.rd(view.main_ts, FAILURE_TAG, formal(int))
        return t

    p = cluster.spawn(1, read_failure)
    cluster.run_until(p.finished, limit=LIMIT)
    print(f"{ms()}  failure tuple deposited: {p.finished.value}")

    print(f"{ms()}  restarting host 0 ...")
    cluster.recover(0)
    r0 = cluster.replica(0)
    cluster.run_until(r0.recovered_event, limit=LIMIT)
    print(f"{ms()}  host 0 rejoined and installed the state snapshot")

    cluster.settle(2_000_000)
    prints = [cluster.replica(h).stable_fingerprint() for h in range(3)]
    counts = [t for t in cluster.replica(0).space_tuples(cluster.main_ts)
              if t[0] == "count"]
    print(f"{ms()}  replica fingerprints identical: {len(set(prints)) == 1}")
    print(f"{ms()}  counter value on the recovered replica: {counts[0][1]} "
          "(host 0's in-flight increments were re-submitted or completed "
          "before the crash; hosts 1 and 2 completed all of theirs)")
    stats = cluster.segment.stats.snapshot()
    print(f"{ms()}  wire totals: {stats['frames']} frames, "
          f"{stats['broadcast_frames']} broadcasts, {stats['bytes']} bytes")


if __name__ == "__main__":
    main()
