#!/usr/bin/env python3
"""Fault-tolerant bag-of-tasks: workers crash, no work is lost.

The paper's flagship paradigm (Sec. 4).  Four workers pull matrix-row
"subtasks" from the bag; two of them crash mid-task.  In FT-Linda mode
the in-progress tuples plus the failure monitor recycle the lost
subtasks; in classic mode the same crashes silently lose work.

Run:  python examples/ft_bag_of_tasks.py
"""

from repro import LocalRuntime
from repro.baselines import PlainLindaRuntime
from repro.paradigms import run_bag_of_tasks


def dot_row(row_id: int) -> int:
    """Pretend each task is one row of a matrix-vector product."""
    vec = list(range(64))
    row = [(row_id * 31 + j) % 17 for j in range(64)]
    return sum(a * b for a, b in zip(row, vec))


def main() -> None:
    tasks = list(range(16))
    crashes = {0: 1, 1: 2}  # workers 0 and 1 die after 1 and 2 tasks

    print("=== FT-Linda: in-progress tuples + failure monitor ===")
    report = run_bag_of_tasks(
        LocalRuntime(), tasks, n_workers=4, compute=dot_row,
        ft=True, crash_workers=crashes,
    )
    print(f"completed {len(report['results'])}/{len(tasks)} tasks, "
          f"lost {report['lost']}, recycled {report['recycled']} "
          "crashed workers' state")
    assert report["lost"] == 0

    print()
    print("=== classic Linda: same crashes, no recovery ===")
    report = run_bag_of_tasks(
        PlainLindaRuntime(), tasks, n_workers=4, compute=dot_row,
        ft=False, crash_workers=crashes, collect_timeout=3.0,
    )
    print(f"completed {len(report['results'])}/{len(tasks)} tasks, "
          f"lost {report['lost']} — the crashed workers took their "
          "subtasks with them")
    assert report["lost"] == len(crashes)


if __name__ == "__main__":
    main()
