#!/usr/bin/env python3
"""Quickstart: tuple spaces, the classic Linda ops, and FT-Linda's AGS.

Run:  python examples/quickstart.py
"""

from repro import (
    AGS,
    Guard,
    LocalRuntime,
    Op,
    Resilience,
    formal,
    ref,
)
from repro.lcc import compile_ags


def main() -> None:
    rt = LocalRuntime()
    ts = rt.main_ts  # the default shared, stable tuple space

    # -- classic Linda: out / in / rd / inp ----------------------------- #
    rt.out(ts, "greeting", "hello", 42)
    tup = rt.rd(ts, "greeting", formal(str), formal(int))  # read, keep
    print("rd  ->", tup)
    tup = rt.in_(ts, "greeting", formal(str), formal(int))  # withdraw
    print("in  ->", tup)
    print("inp ->", rt.inp(ts, "greeting", formal(str), formal(int)))  # None

    # -- eval: processes coordinating through tuple space ---------------- #
    def producer(proc, n):
        for i in range(n):
            proc.out(ts, "item", i)

    def consumer(proc, n):
        return sum(proc.in_(ts, "item", formal(int))[1] for _ in range(n))

    rt.eval_(producer, 5)
    total = rt.eval_(consumer, 5).join(timeout=10)
    print("consumer summed:", total)

    # -- FT-Linda: the atomic guarded statement --------------------------- #
    # fetch-and-increment with NO window for failures or races between
    # the withdraw and the redeposit:
    rt.out(ts, "count", 0)
    incr = AGS.single(
        Guard.in_(ts, "count", formal(int, "old")),
        [Op.out(ts, "count", ref("old") + 1)],
    )
    for _ in range(3):
        result = rt.execute(incr)
        print("incremented from", result["old"])
    print("count is now", rt.rd(ts, "count", formal(int))[1])

    # -- the same statement, compiled from FT-lcc text --------------------- #
    stmt = compile_ags(
        '< in(main, "count", ?old:int) => out(main, "count", old * 10) >',
        {"main": ts},
    )
    rt.execute(stmt)
    print("after textual AGS:", rt.rd(ts, "count", formal(int))[1])

    # -- disjunction: take a job if any, otherwise record idleness ---------- #
    poll = compile_ags(
        '< inp(main, "job", ?j:int) => out(main, "taken", j)'
        "  or true => out(main, \"idle\", 1) >",
        {"main": ts},
    )
    r = rt.execute(poll)
    print("no job, branch fired:", r.fired)  # 1 = the idle branch

    # -- multiple tuple spaces and atomic move ------------------------------ #
    scratch = rt.create_space("scratch", Resilience.VOLATILE)
    for i in range(4):
        rt.out(ts, "work", i)
    rt.move(ts, scratch, "work", formal(int))  # all four, atomically
    print("moved to scratch:", rt.space_size(scratch), "tuples")


if __name__ == "__main__":
    main()
