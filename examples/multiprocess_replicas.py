#!/usr/bin/env python3
"""FT-Linda across real OS processes, surviving a SIGKILL.

Each replica of the stable tuple space runs in its own Python process
(the closest single-machine stand-in for the paper's workstations);
commands are pickled across process boundaries exactly as they would be
marshalled onto a wire.  We kill one replica with prejudice and show the
group keeps serving and stays consistent.

Run:  python examples/multiprocess_replicas.py
"""

from repro import AGS, FAILURE_TAG, Guard, Op, formal, ref
from repro.parallel import MultiprocessRuntime


def main() -> None:
    with MultiprocessRuntime(n_replicas=3) as rt:
        ts = rt.main_ts
        rt.out(ts, "count", 0)

        incr = AGS.single(
            Guard.in_(ts, "count", formal(int, "v")),
            [Op.out(ts, "count", ref("v") + 1)],
        )

        def worker(proc, n):
            for _ in range(n):
                proc.execute(incr)

        handles = [rt.eval_(worker, 10) for _ in range(4)]
        for h in handles:
            h.join(timeout=60)
        print("after 40 increments:", rt.rd(ts, "count", formal(int)))
        print("replica fingerprints equal:", rt.converged())

        print("\nSIGKILLing replica 2 ...")
        rt.crash_replica(2)
        print("failure tuple:", rt.inp(ts, FAILURE_TAG, formal(int)))

        handles = [rt.eval_(worker, 5) for _ in range(2)]
        for h in handles:
            h.join(timeout=60)
        print("after 10 more increments:", rt.rd(ts, "count", formal(int)))
        print("surviving replicas consistent:", rt.converged())


if __name__ == "__main__":
    main()
