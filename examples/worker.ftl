# The FT bag-of-tasks worker as an FT-lcc program (see Sec. 5.2).
#
# Spaces: the task bag, the per-computation in-progress space, results.
space bag     stable shared
space prog    stable shared
space results stable shared

# Atomically take a subtask and record it in progress.
stmt take =
    < in(bag, "task", ?t:int) => out(prog, "task", t) >

# Retire the in-progress record and deposit the result, indivisibly.
stmt finish(t, r) =
    < in(prog, "task", t) => out(results, "result", t, r) >

# Non-blocking poll: grab a task if any, otherwise report idleness.
stmt poll =
    < inp(bag, "task", ?t:int) => out(prog, "task", t)
      or true => out(results, "idle", 1) >

# Recycle a crashed worker's in-progress subtasks (the monitor's move).
stmt recycle =
    < true => move(prog, bag, "task", ?:int) >
