#!/usr/bin/env python3
"""A highly available counter service with primary/backup failover.

The server's state lives in a stable tuple space; the backup blocks on
the primary's *failure tuple* (the paper's fail-stop notification) and
takes over atomically — recovering the request the primary died holding.
Every request receives exactly one reply; the state continues seamlessly.

Run:  python examples/replicated_server.py
"""

from repro import LocalRuntime
from repro.paradigms import ReplicatedServer


def handler(state: int, payload: int) -> tuple[int, int]:
    """A running-sum service: reply with the new total."""
    new_state = state + payload
    return new_state, new_state


def main() -> None:
    rt = LocalRuntime()
    svc = ReplicatedServer(rt, "adder", handler, initial_state=0)

    print("primary will crash after answering 3 requests;")
    print("the backup takes over on the failure tuple...\n")
    report = svc.run_with_failover(
        n_requests=8,
        payloads=lambda i: 10 * (i + 1),
        crash_after=3,
    )

    print(f"primary answered : {report['primary_answered']}")
    print(f"backup answered  : {report['backup_answered']}")
    for i in sorted(report["replies"]):
        print(f"  request {i} (+{10 * (i + 1):>2}) -> running sum "
              f"{report['replies'][i]}")
    total = sum(10 * (i + 1) for i in range(8))
    assert max(report["replies"].values()) == total
    print(f"\nall 8 requests answered; final sum {total} — state survived "
          "the failover")


if __name__ == "__main__":
    main()
